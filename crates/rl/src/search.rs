//! REINFORCE search over compensation placements (paper Fig. 6).

use crate::env::{Environment, Outcome};
use crate::policy::PolicyRnn;
use crate::reward::RewardSpec;
use cn_nn::optim::{Adam, Optimizer};
use cn_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Discrete action set used by the policy: compensation ratios including
/// "none" (the paper's `S ≤ 0`).
pub const DEFAULT_ACTIONS: [f32; 4] = [0.0, 0.25, 0.5, 1.0];

/// Search configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Training episodes (policy updates).
    pub episodes: usize,
    /// Rollouts sampled per episode.
    pub rollouts_per_episode: usize,
    /// Policy hidden width.
    pub hidden_size: usize,
    /// Adam learning rate for the policy.
    pub lr: f32,
    /// Action set (ratios; entries ≤ 0 mean "no compensation").
    pub actions: Vec<f32>,
    /// Reward specification (overhead budget).
    pub reward: RewardSpec,
    /// Seed for policy init and sampling.
    pub seed: u64,
}

impl SearchConfig {
    /// Defaults matching the quick experiment profile.
    pub fn new(overhead_limit: f32, seed: u64) -> Self {
        SearchConfig {
            episodes: 30,
            rollouts_per_episode: 4,
            hidden_size: 32,
            lr: 0.03,
            actions: DEFAULT_ACTIONS.to_vec(),
            reward: RewardSpec::new(overhead_limit),
            seed,
        }
    }
}

/// One explored placement (for Fig. 10-style scatter plots).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExploredPoint {
    /// Ratio per candidate slot.
    pub ratios: Vec<f32>,
    /// Evaluation outcome.
    pub outcome: Outcome,
    /// Reward under the configured spec.
    pub reward: f32,
}

/// Search result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchResult {
    /// Best placement found (by reward).
    pub best_ratios: Vec<f32>,
    /// Outcome of the best placement.
    pub best_outcome: Outcome,
    /// Reward of the best placement.
    pub best_reward: f32,
    /// Mean reward per episode (learning curve).
    pub reward_curve: Vec<f32>,
    /// Every distinct placement evaluated (the Fig. 10 cloud).
    pub explored: Vec<ExploredPoint>,
}

/// Runs REINFORCE with a moving-average baseline over `env`.
///
/// Over-budget placements are scored `−overhead` *without* running the
/// expensive compensator training (the paper's skip heuristic).
pub fn reinforce_search(env: &mut dyn Environment, cfg: &SearchConfig) -> SearchResult {
    let slots = env.num_slots();
    assert!(slots > 0, "environment has no decision slots");
    let mut policy = PolicyRnn::new(cfg.hidden_size, cfg.actions.len(), cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut rng = SeededRng::new(cfg.seed ^ 0x5ea6);

    let mut baseline = 0.0f32;
    let mut baseline_init = false;
    let mut best: Option<ExploredPoint> = None;
    let mut reward_curve = Vec::with_capacity(cfg.episodes);
    let mut explored: Vec<ExploredPoint> = Vec::new();
    let mut seen = std::collections::HashSet::new();

    for _ in 0..cfg.episodes {
        let mut episode_rewards = Vec::with_capacity(cfg.rollouts_per_episode);
        let mut rollouts = Vec::with_capacity(cfg.rollouts_per_episode);
        for _ in 0..cfg.rollouts_per_episode {
            let rollout = policy.sample(slots, &mut rng);
            let ratios: Vec<f32> = rollout.actions.iter().map(|&a| cfg.actions[a]).collect();
            let overhead = env.overhead_of(&ratios);
            let (outcome, reward) = if cfg.reward.over_budget(overhead) {
                // Skip the expensive evaluation (paper Sec. III-B).
                let outcome = Outcome {
                    acc_mean: 0.0,
                    acc_std: 0.0,
                    overhead,
                };
                (outcome, cfg.reward.reward(0.0, 0.0, overhead))
            } else {
                let outcome = env.evaluate(&ratios);
                (
                    outcome,
                    cfg.reward
                        .reward(outcome.acc_mean, outcome.acc_std, outcome.overhead),
                )
            };
            let point = ExploredPoint {
                ratios: ratios.clone(),
                outcome,
                reward,
            };
            if !cfg.reward.over_budget(overhead) {
                let key: Vec<u32> = ratios.iter().map(|r| (r * 1000.0) as u32).collect();
                if seen.insert(key) {
                    explored.push(point.clone());
                }
            }
            if best.as_ref().is_none_or(|b| reward > b.reward) {
                best = Some(point);
            }
            episode_rewards.push(reward);
            rollouts.push(rollout);
        }

        let mean_reward = episode_rewards.iter().sum::<f32>() / episode_rewards.len() as f32;
        if !baseline_init {
            baseline = mean_reward;
            baseline_init = true;
        }
        policy.zero_grad();
        for (rollout, &reward) in rollouts.iter().zip(episode_rewards.iter()) {
            policy.accumulate_reinforce(rollout, reward - baseline);
        }
        let mut params = policy.params_mut();
        opt.step(&mut params);
        baseline = 0.8 * baseline + 0.2 * mean_reward;
        reward_curve.push(mean_reward);
    }

    let best = best.expect("at least one rollout");
    SearchResult {
        best_ratios: best.ratios.clone(),
        best_outcome: best.outcome,
        best_reward: best.reward,
        reward_curve,
        explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MockEnv;

    #[test]
    fn finds_target_in_mock_env() {
        // Optimal assignment: compensate slots 0 and 2 fully, skip 1 and 3.
        let mut env = MockEnv::new(vec![1.0, 0.0, 1.0, 0.0], 0.005);
        let cfg = SearchConfig {
            episodes: 60,
            rollouts_per_episode: 6,
            ..SearchConfig::new(0.5, 11)
        };
        let result = reinforce_search(&mut env, &cfg);
        // The best found assignment must be close to the target.
        let dist: f32 = result
            .best_ratios
            .iter()
            .zip(env.target.iter())
            .map(|(r, t)| (r - t).abs())
            .sum();
        assert!(
            dist <= 1.0,
            "best {:?} too far from target",
            result.best_ratios
        );
        assert!(result.best_outcome.acc_mean > 0.7);
    }

    #[test]
    fn learning_curve_improves() {
        let mut env = MockEnv::new(vec![0.5; 5], 0.005);
        let cfg = SearchConfig {
            episodes: 60,
            rollouts_per_episode: 6,
            ..SearchConfig::new(0.5, 13)
        };
        let result = reinforce_search(&mut env, &cfg);
        let early: f32 = result.reward_curve[..10].iter().sum::<f32>() / 10.0;
        let late: f32 = result.reward_curve[result.reward_curve.len() - 10..]
            .iter()
            .sum::<f32>()
            / 10.0;
        assert!(late > early, "no learning: {early} → {late}");
    }

    #[test]
    fn over_budget_plans_are_not_evaluated() {
        // Tiny budget: almost everything is over budget; the expensive
        // evaluate() should be called rarely (only for all-zero-ish plans).
        let mut env = MockEnv::new(vec![1.0; 6], 0.1);
        let cfg = SearchConfig {
            episodes: 10,
            rollouts_per_episode: 4,
            ..SearchConfig::new(0.05, 17)
        };
        let _ = reinforce_search(&mut env, &cfg);
        assert!(
            env.evaluations < 40,
            "budget skip not applied: {} evaluations",
            env.evaluations
        );
    }

    #[test]
    fn explored_points_are_unique_and_in_budget() {
        let mut env = MockEnv::new(vec![0.5; 4], 0.01);
        let cfg = SearchConfig::new(0.5, 19);
        let result = reinforce_search(&mut env, &cfg);
        let mut keys = std::collections::HashSet::new();
        for p in &result.explored {
            assert!(p.outcome.overhead <= 0.5);
            let key: Vec<u32> = p.ratios.iter().map(|r| (r * 1000.0) as u32).collect();
            assert!(keys.insert(key), "duplicate explored point");
        }
    }
}
