//! Exhaustive and budget-capped enumeration of compensation placements.
//!
//! Used as the reference line in the paper's Fig. 10 ("exhaustive error
//! compensation") and as ground truth for the RL search on small
//! candidate sets.

use crate::env::{Environment, Outcome};
use crate::reward::RewardSpec;
use crate::search::ExploredPoint;

/// Evaluates the placement that compensates *every* candidate layer with
/// the given ratio (the paper's exhaustive reference point).
pub fn all_layers(env: &mut dyn Environment, ratio: f32, reward: &RewardSpec) -> ExploredPoint {
    let ratios = vec![ratio; env.num_slots()];
    let outcome = env.evaluate(&ratios);
    ExploredPoint {
        reward: reward.reward(outcome.acc_mean, outcome.acc_std, outcome.overhead),
        ratios,
        outcome,
    }
}

/// Enumerates every subset of candidate layers at a fixed ratio (2^slots
/// placements), in-budget ones evaluated, and returns all points.
///
/// # Panics
///
/// Panics if the environment has more than 20 slots (2^20 placements).
pub fn subsets_at_ratio(
    env: &mut dyn Environment,
    ratio: f32,
    reward: &RewardSpec,
) -> Vec<ExploredPoint> {
    let slots = env.num_slots();
    assert!(
        slots <= 20,
        "subset enumeration infeasible for {slots} slots"
    );
    let mut out = Vec::with_capacity(1 << slots);
    for mask in 0u32..(1 << slots) {
        let ratios: Vec<f32> = (0..slots)
            .map(|i| if mask & (1 << i) != 0 { ratio } else { 0.0 })
            .collect();
        let overhead = env.overhead_of(&ratios);
        let outcome = if reward.over_budget(overhead) {
            Outcome {
                acc_mean: 0.0,
                acc_std: 0.0,
                overhead,
            }
        } else {
            env.evaluate(&ratios)
        };
        out.push(ExploredPoint {
            reward: reward.reward(outcome.acc_mean, outcome.acc_std, outcome.overhead),
            ratios,
            outcome,
        });
    }
    out
}

/// Best point of a set by reward.
///
/// # Panics
///
/// Panics on an empty set.
pub fn best_of(points: &[ExploredPoint]) -> &ExploredPoint {
    points
        .iter()
        .max_by(|a, b| a.reward.partial_cmp(&b.reward).expect("finite rewards"))
        .expect("non-empty point set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MockEnv;

    #[test]
    fn all_layers_uses_every_slot() {
        let mut env = MockEnv::new(vec![1.0; 3], 0.01);
        let p = all_layers(&mut env, 1.0, &RewardSpec::new(1.0));
        assert_eq!(p.ratios, vec![1.0; 3]);
        assert!(p.outcome.acc_mean > 0.89); // exact target hit
    }

    #[test]
    fn subset_enumeration_finds_true_optimum() {
        let mut env = MockEnv::new(vec![1.0, 0.0, 1.0], 0.001);
        let points = subsets_at_ratio(&mut env, 1.0, &RewardSpec::new(1.0));
        assert_eq!(points.len(), 8);
        let best = best_of(&points);
        assert_eq!(best.ratios, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn over_budget_subsets_skip_evaluation() {
        let mut env = MockEnv::new(vec![1.0; 4], 1.0); // huge overhead/ratio
        let points = subsets_at_ratio(&mut env, 1.0, &RewardSpec::new(0.5));
        // Only the empty subset fits the budget.
        assert_eq!(env.evaluations, 1);
        assert_eq!(points.len(), 16);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn refuses_huge_spaces() {
        let mut env = MockEnv::new(vec![0.0; 21], 0.01);
        subsets_at_ratio(&mut env, 1.0, &RewardSpec::new(1.0));
    }
}
