//! The RNN policy network (paper Fig. 6).
//!
//! An Elman recurrent cell unrolled over the candidate layers: step `t`
//! consumes a one-hot encoding of the previous action, updates the hidden
//! state, and emits a softmax distribution over the discrete action set
//! (compensation ratios, including "none"). Sampling and the REINFORCE
//! backward pass (manual BPTT) are self-contained here; parameters reuse
//! [`cn_nn::Param`] so the standard optimizers apply.

use cn_nn::Param;
use cn_tensor::{SeededRng, Tensor};

/// One sampled trajectory with everything the policy gradient needs.
#[derive(Debug, Clone)]
pub struct Rollout {
    /// Chosen action index per step.
    pub actions: Vec<usize>,
    /// `log π(aₜ|sₜ)` per step.
    pub log_probs: Vec<f32>,
    /// Softmax distributions per step (cached for the backward pass).
    probs: Vec<Tensor>,
    /// Hidden states `h₀..h_T` (h₀ = zeros).
    hidden: Vec<Tensor>,
    /// Inputs per step (one-hot of previous action).
    inputs: Vec<Tensor>,
}

impl Rollout {
    /// Total log-probability of the trajectory.
    pub fn total_log_prob(&self) -> f32 {
        self.log_probs.iter().sum()
    }
}

/// Elman-RNN policy over a discrete action set.
#[derive(Debug, Clone)]
pub struct PolicyRnn {
    w_in: Param,
    w_hh: Param,
    b_h: Param,
    w_out: Param,
    b_out: Param,
    hidden_size: usize,
    num_actions: usize,
}

impl PolicyRnn {
    /// Creates a policy with the given hidden width and action count.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes.
    pub fn new(hidden_size: usize, num_actions: usize, seed: u64) -> Self {
        assert!(hidden_size > 0 && num_actions > 0, "sizes must be positive");
        let mut rng = SeededRng::new(seed);
        let scale_in = (1.0 / num_actions as f32).sqrt();
        let scale_h = (1.0 / hidden_size as f32).sqrt();
        PolicyRnn {
            w_in: Param::new(
                "w_in",
                rng.normal_tensor(&[hidden_size, num_actions], 0.0, scale_in),
            ),
            w_hh: Param::new(
                "w_hh",
                rng.normal_tensor(&[hidden_size, hidden_size], 0.0, scale_h),
            ),
            b_h: Param::new("b_h", Tensor::zeros(&[hidden_size])),
            w_out: Param::new(
                "w_out",
                rng.normal_tensor(&[num_actions, hidden_size], 0.0, scale_h),
            ),
            b_out: Param::new("b_out", Tensor::zeros(&[num_actions])),
            hidden_size,
            num_actions,
        }
    }

    /// Number of discrete actions.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// All trainable parameters (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.w_in,
            &mut self.w_hh,
            &mut self.b_h,
            &mut self.w_out,
            &mut self.b_out,
        ]
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    fn step(&self, x: &Tensor, h_prev: &Tensor) -> (Tensor, Tensor) {
        // h = tanh(W_in·x + W_hh·h_prev + b)
        let mut pre = self.w_in.value.matvec(x);
        pre.axpy(1.0, &self.w_hh.value.matvec(h_prev));
        pre.axpy(1.0, &self.b_h.value);
        let h = pre.map(f32::tanh);
        // logits = W_out·h + b_out
        let mut logits = self.w_out.value.matvec(&h);
        logits.axpy(1.0, &self.b_out.value);
        (h, logits)
    }

    /// Samples a trajectory of `steps` actions.
    pub fn sample(&self, steps: usize, rng: &mut SeededRng) -> Rollout {
        let mut actions = Vec::with_capacity(steps);
        let mut log_probs = Vec::with_capacity(steps);
        let mut probs = Vec::with_capacity(steps);
        let mut hidden = vec![Tensor::zeros(&[self.hidden_size])];
        let mut inputs = Vec::with_capacity(steps);
        let mut prev_action: Option<usize> = None;
        for _ in 0..steps {
            let mut x = Tensor::zeros(&[self.num_actions]);
            if let Some(a) = prev_action {
                x.data_mut()[a] = 1.0;
            }
            let (h, logits) = self.step(&x, hidden.last().expect("h0 exists"));
            let p = logits.reshape(&[1, self.num_actions]).softmax_rows();
            let p = p.into_reshaped(&[self.num_actions]);
            // Sample from the categorical distribution.
            let u = rng.uniform();
            let mut cum = 0.0;
            let mut action = self.num_actions - 1;
            for (i, &pi) in p.data().iter().enumerate() {
                cum += pi;
                if u < cum {
                    action = i;
                    break;
                }
            }
            log_probs.push(p.data()[action].max(1e-12).ln());
            actions.push(action);
            probs.push(p);
            hidden.push(h);
            inputs.push(x);
            prev_action = Some(action);
        }
        Rollout {
            actions,
            log_probs,
            probs,
            hidden,
            inputs,
        }
    }

    /// The greedy (argmax) trajectory — used to read out the final policy.
    pub fn greedy(&self, steps: usize) -> Vec<usize> {
        let mut actions = Vec::with_capacity(steps);
        let mut h = Tensor::zeros(&[self.hidden_size]);
        let mut prev: Option<usize> = None;
        for _ in 0..steps {
            let mut x = Tensor::zeros(&[self.num_actions]);
            if let Some(a) = prev {
                x.data_mut()[a] = 1.0;
            }
            let (h_new, logits) = self.step(&x, &h);
            let a = logits.argmax();
            actions.push(a);
            prev = Some(a);
            h = h_new;
        }
        actions
    }

    /// Accumulates the REINFORCE gradient of `−advantage·Σₜ log π(aₜ)`
    /// for one rollout (manual backpropagation through time).
    ///
    /// Minimizing this with a gradient step *increases* the likelihood of
    /// trajectories with positive advantage.
    pub fn accumulate_reinforce(&mut self, rollout: &Rollout, advantage: f32) {
        let steps = rollout.actions.len();
        let mut g_h_next = Tensor::zeros(&[self.hidden_size]);
        // Work backwards through time.
        for t in (0..steps).rev() {
            // d(−A·log π)/d logits = A·(π − onehot(a)).
            let mut g_logits = rollout.probs[t].clone();
            g_logits.data_mut()[rollout.actions[t]] -= 1.0;
            g_logits.scale(advantage);

            let h_t = &rollout.hidden[t + 1];
            // Output head gradients: W_out [A, H] += g_logits ⊗ h.
            let g_out = g_logits
                .reshape(&[self.num_actions, 1])
                .matmul(&h_t.reshape(&[1, self.hidden_size]));
            self.w_out.accumulate(&g_out);
            self.b_out.accumulate(&g_logits);

            // Hidden gradient: from the head plus from the next step.
            let g_h = self
                .w_out
                .value
                .t_matmul(&g_logits.reshape(&[self.num_actions, 1]));
            let mut g_h = g_h.into_reshaped(&[self.hidden_size]);
            g_h.axpy(1.0, &g_h_next);

            // Through tanh: g_pre = g_h ⊙ (1 − h²).
            let g_pre = g_h.zip_map(h_t, |g, h| g * (1.0 - h * h));

            let g_in = g_pre
                .reshape(&[self.hidden_size, 1])
                .matmul(&rollout.inputs[t].reshape(&[1, self.num_actions]));
            self.w_in.accumulate(&g_in);
            let g_hh = g_pre
                .reshape(&[self.hidden_size, 1])
                .matmul(&rollout.hidden[t].reshape(&[1, self.hidden_size]));
            self.w_hh.accumulate(&g_hh);
            self.b_h.accumulate(&g_pre);

            // Propagate to the previous hidden state.
            g_h_next = self
                .w_hh
                .value
                .t_matmul(&g_pre.reshape(&[self.hidden_size, 1]))
                .into_reshaped(&[self.hidden_size]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_nn::optim::{Adam, Optimizer};

    #[test]
    fn sample_shapes_and_determinism() {
        let policy = PolicyRnn::new(16, 4, 1);
        let r1 = policy.sample(6, &mut SeededRng::new(2));
        let r2 = policy.sample(6, &mut SeededRng::new(2));
        assert_eq!(r1.actions.len(), 6);
        assert_eq!(r1.actions, r2.actions);
        assert!(r1.actions.iter().all(|&a| a < 4));
        assert!(r1.log_probs.iter().all(|&lp| lp <= 0.0));
    }

    #[test]
    fn probabilities_are_valid() {
        let policy = PolicyRnn::new(8, 5, 3);
        let r = policy.sample(4, &mut SeededRng::new(4));
        for p in &r.probs {
            let sum: f32 = p.data().iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(p.data().iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn reinforce_increases_probability_of_rewarded_actions() {
        // Reward trajectories whose every action is `2`; after training the
        // greedy rollout should be all-2s.
        let mut policy = PolicyRnn::new(16, 4, 5);
        let mut opt = Adam::new(0.05);
        let mut rng = SeededRng::new(6);
        let steps = 5;
        let mut baseline = 0.0f32;
        for _ in 0..200 {
            let rollout = policy.sample(steps, &mut rng);
            let hits = rollout.actions.iter().filter(|&&a| a == 2).count();
            let reward = hits as f32 / steps as f32;
            let advantage = reward - baseline;
            baseline = 0.9 * baseline + 0.1 * reward;
            policy.zero_grad();
            policy.accumulate_reinforce(&rollout, advantage);
            let mut params = policy.params_mut();
            opt.step(&mut params);
        }
        let greedy = policy.greedy(steps);
        assert!(
            greedy.iter().filter(|&&a| a == 2).count() >= steps - 1,
            "policy failed to learn: {greedy:?}"
        );
    }

    #[test]
    fn gradient_matches_numeric_on_log_prob() {
        // ∂(−Σ log π)/∂θ via REINFORCE with advantage 1 must match numeric
        // differentiation of the resampled trajectory's log-prob.
        let mut policy = PolicyRnn::new(6, 3, 7);
        let rollout = policy.sample(4, &mut SeededRng::new(8));

        policy.zero_grad();
        policy.accumulate_reinforce(&rollout, 1.0);
        let analytic: Vec<Tensor> = policy.params_mut().iter().map(|p| p.grad.clone()).collect();

        // Numeric: re-run the (deterministic given actions) forward pass.
        let log_prob_of = |policy: &PolicyRnn, actions: &[usize]| -> f32 {
            let mut h = Tensor::zeros(&[6]);
            let mut prev: Option<usize> = None;
            let mut total = 0.0;
            for &a in actions {
                let mut x = Tensor::zeros(&[3]);
                if let Some(pa) = prev {
                    x.data_mut()[pa] = 1.0;
                }
                let (h_new, logits) = policy.step(&x, &h);
                let p = logits.reshape(&[1, 3]).log_softmax_rows();
                total += p.data()[a];
                h = h_new;
                prev = Some(a);
            }
            total
        };

        let eps = 1e-3;
        for (pi, _) in analytic.iter().enumerate() {
            for i in 0..analytic[pi].numel() {
                let orig = policy.params_mut()[pi].value.data()[i];
                policy.params_mut()[pi].value.data_mut()[i] = orig + eps;
                let lp = log_prob_of(&policy, &rollout.actions);
                policy.params_mut()[pi].value.data_mut()[i] = orig - eps;
                let lm = log_prob_of(&policy, &rollout.actions);
                policy.params_mut()[pi].value.data_mut()[i] = orig;
                let numeric = -(lp - lm) / (2.0 * eps); // loss is −log π
                let a = analytic[pi].data()[i];
                assert!(
                    (a - numeric).abs() < 2e-2,
                    "param {pi} idx {i}: {a} vs {numeric}"
                );
            }
        }
    }
}
