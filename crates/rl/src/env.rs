//! Search environments.
//!
//! The paper's environment (Fig. 6) is "the neural network trained with
//! error suppression and compensation whose locations and the filter
//! numbers are determined by RL". [`CorrectNetEnv`] realizes it on top of
//! [`correctnet::CorrectNetStages`]; evaluations are memoized because the
//! policy frequently revisits placements.

use cn_data::Dataset;
use cn_nn::Sequential;
use correctnet::compensation::{CompensationPlan, PlanEntry};
use correctnet::pipeline::CorrectNetStages;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of evaluating one placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Mean Monte-Carlo accuracy under variations.
    pub acc_mean: f32,
    /// Accuracy standard deviation.
    pub acc_std: f32,
    /// Weight overhead of the placement.
    pub overhead: f32,
}

/// A search environment mapping per-candidate compensation ratios to an
/// [`Outcome`].
pub trait Environment {
    /// Number of decision slots (candidate layers).
    fn num_slots(&self) -> usize;

    /// Evaluates one ratio assignment (`ratios[i] ≤ 0` = no compensation
    /// at candidate `i`).
    fn evaluate(&mut self, ratios: &[f32]) -> Outcome;

    /// Overhead of a placement *without* training/evaluating it — used to
    /// skip over-budget plans cheaply (paper's fast-learning trick).
    fn overhead_of(&self, ratios: &[f32]) -> f32;
}

/// The real CorrectNet environment.
pub struct CorrectNetEnv<'a> {
    stages: CorrectNetStages,
    base: &'a Sequential,
    train: &'a Dataset,
    test: &'a Dataset,
    /// Candidate weight-layer indices (from candidate selection).
    candidates: Vec<usize>,
    cache: HashMap<Vec<u32>, Outcome>,
    evaluations: usize,
}

impl<'a> CorrectNetEnv<'a> {
    /// Creates the environment over a Lipschitz-trained base model.
    pub fn new(
        stages: CorrectNetStages,
        base: &'a Sequential,
        train: &'a Dataset,
        test: &'a Dataset,
        candidates: Vec<usize>,
    ) -> Self {
        CorrectNetEnv {
            stages,
            base,
            train,
            test,
            candidates,
            cache: HashMap::new(),
            evaluations: 0,
        }
    }

    /// Builds the plan corresponding to a ratio assignment.
    pub fn plan_of(&self, ratios: &[f32]) -> CompensationPlan {
        assert_eq!(ratios.len(), self.candidates.len(), "slot count mismatch");
        CompensationPlan {
            entries: self
                .candidates
                .iter()
                .zip(ratios.iter())
                .map(|(&weight_layer, &ratio)| PlanEntry {
                    weight_layer,
                    ratio,
                })
                .collect(),
        }
    }

    /// Number of *uncached* environment evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    fn key(ratios: &[f32]) -> Vec<u32> {
        ratios
            .iter()
            .map(|r| (r.max(0.0) * 1000.0) as u32)
            .collect()
    }
}

impl Environment for CorrectNetEnv<'_> {
    fn num_slots(&self) -> usize {
        self.candidates.len()
    }

    fn evaluate(&mut self, ratios: &[f32]) -> Outcome {
        let key = Self::key(ratios);
        if let Some(hit) = self.cache.get(&key) {
            return *hit;
        }
        let plan = self.plan_of(ratios);
        let eval = self
            .stages
            .evaluate_plan(self.base, self.train, self.test, &plan);
        let outcome = Outcome {
            acc_mean: eval.mean,
            acc_std: eval.std,
            overhead: eval.overhead,
        };
        self.evaluations += 1;
        self.cache.insert(key, outcome);
        outcome
    }

    fn overhead_of(&self, ratios: &[f32]) -> f32 {
        correctnet::compensation::plan_overhead(self.base, &self.plan_of(ratios))
    }
}

/// A synthetic environment for unit-testing search algorithms: the best
/// outcome is a fixed hidden target assignment; accuracy decays with
/// Hamming-like distance from it and overhead grows with the ratios.
#[derive(Debug, Clone)]
pub struct MockEnv {
    /// Hidden optimal ratios.
    pub target: Vec<f32>,
    /// Overhead per unit ratio.
    pub overhead_scale: f32,
    /// Evaluation counter.
    pub evaluations: usize,
}

impl MockEnv {
    /// Creates the mock.
    pub fn new(target: Vec<f32>, overhead_scale: f32) -> Self {
        MockEnv {
            target,
            overhead_scale,
            evaluations: 0,
        }
    }
}

impl Environment for MockEnv {
    fn num_slots(&self) -> usize {
        self.target.len()
    }

    fn evaluate(&mut self, ratios: &[f32]) -> Outcome {
        self.evaluations += 1;
        let dist: f32 = self
            .target
            .iter()
            .zip(ratios.iter())
            .map(|(t, r)| (t - r.max(0.0)).abs())
            .sum::<f32>()
            / self.target.len() as f32;
        Outcome {
            acc_mean: (0.9 - 0.6 * dist).max(0.0),
            acc_std: 0.01,
            overhead: self.overhead_of(ratios),
        }
    }

    fn overhead_of(&self, ratios: &[f32]) -> f32 {
        self.overhead_scale * ratios.iter().map(|r| r.max(0.0)).sum::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_env_prefers_target() {
        let mut env = MockEnv::new(vec![0.5, 0.0, 1.0], 0.01);
        let at_target = env.evaluate(&[0.5, 0.0, 1.0]);
        let off_target = env.evaluate(&[1.0, 1.0, 0.0]);
        assert!(at_target.acc_mean > off_target.acc_mean);
        assert_eq!(env.evaluations, 2);
    }

    #[test]
    fn mock_overhead_scales() {
        let env = MockEnv::new(vec![0.0; 4], 0.01);
        assert!((env.overhead_of(&[1.0, 1.0, 0.0, 0.0]) - 0.02).abs() < 1e-6);
        assert_eq!(env.overhead_of(&[0.0; 4]), 0.0);
        // Negative ratios count as zero.
        assert_eq!(env.overhead_of(&[-1.0, 0.0, 0.0, 0.0]), 0.0);
    }
}
