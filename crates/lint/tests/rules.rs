//! Marker-driven fixture tests for every cataloged rule.
//!
//! Each fixture under `tests/fixtures/<rule>/` is a plain `.rs` file that is
//! never compiled. Its first line is a `//@ path: <virtual-path>` directive
//! giving the workspace-relative path the rule's path filters should see.
//! Expected diagnostics are marked inline:
//!
//! - `//~ rule-name`  — a diagnostic with that rule id on the same line
//! - `//~^ rule-name` — a diagnostic with that rule id on the previous line
//!
//! `fire.rs` fixtures pin that the rule fires at exactly the marked lines;
//! `allowed.rs` twins carry a `// cn-lint: allow(...)` suppression and must
//! produce zero diagnostics.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use cn_lint::engine;
use cn_lint::rules;
use cn_lint::source::SourceFile;

/// `(rule id, line)` pairs — both the expected and the produced side.
type DiagSet = BTreeSet<(String, usize)>;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Strip the directive/marker lines down to (virtual path, expected set).
///
/// Marker comments are left in the source text handed to the linter — they
/// are ordinary line comments, and a correct lexer/suppression parser must
/// ignore them — so line numbers in the fixture match what the engine sees.
fn parse_fixture(text: &str, file: &Path) -> (String, DiagSet) {
    let first = text.lines().next().unwrap_or("");
    let virtual_path = first
        .strip_prefix("//@ path:")
        .unwrap_or_else(|| panic!("{}: first line must be `//@ path: ...`", file.display()))
        .trim()
        .to_string();

    let mut expected = BTreeSet::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if let Some(pos) = line.find("//~") {
            let rest = &line[pos + 3..];
            let (rule, at) = match rest.strip_prefix('^') {
                Some(r) => (r.trim(), lineno - 1),
                None => (rest.trim(), lineno),
            };
            assert!(
                !rule.is_empty(),
                "{}:{}: empty expectation marker",
                file.display(),
                lineno
            );
            expected.insert((rule.to_string(), at));
        }
    }
    (virtual_path, expected)
}

fn run_fixture(file: &Path) -> (DiagSet, DiagSet) {
    let text =
        std::fs::read_to_string(file).unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
    let (virtual_path, expected) = parse_fixture(&text, file);
    let source = SourceFile::parse(virtual_path, text.as_str());
    let diags = engine::run(std::slice::from_ref(&source), &rules::catalog());
    let actual: DiagSet = diags
        .iter()
        .map(|d| (d.rule.to_string(), d.line as usize))
        .collect();
    (expected, actual)
}

fn check_pair(dir: &str) {
    let base = fixtures_dir().join(dir);

    let fire = base.join("fire.rs");
    let (expected, actual) = run_fixture(&fire);
    assert!(
        !expected.is_empty(),
        "{}: fire fixture declares no `//~` expectations",
        fire.display()
    );
    assert_eq!(
        expected,
        actual,
        "{}: expected diagnostics {:?}, got {:?}",
        fire.display(),
        expected,
        actual
    );

    let allowed = base.join("allowed.rs");
    let (expected, actual) = run_fixture(&allowed);
    assert!(
        expected.is_empty(),
        "{}: allowed fixtures must not declare expectations",
        allowed.display()
    );
    assert!(
        actual.is_empty(),
        "{}: suppression failed, diagnostics leaked: {:?}",
        allowed.display(),
        actual
    );
}

#[test]
fn collidable_seed_mix_fixture() {
    check_pair("collidable_seed_mix");
}

#[test]
fn kernel_zero_skip_fixture() {
    check_pair("kernel_zero_skip");
}

#[test]
fn no_fma_in_exact_gemm_fixture() {
    check_pair("no_fma_in_exact_gemm");
}

#[test]
fn unbounded_thread_spawn_fixture() {
    check_pair("unbounded_thread_spawn");
}

#[test]
fn lock_in_hot_path_fixture() {
    check_pair("lock_in_hot_path");
}

#[test]
fn stats_after_reply_fixture() {
    check_pair("stats_after_reply");
}

#[test]
fn missing_deprecation_note_fixture() {
    check_pair("missing_deprecation_note");
}

#[test]
fn malformed_suppression_fixture() {
    check_pair("malformed_suppression");
}

#[test]
fn blocking_io_without_timeout_fixture() {
    check_pair("blocking_io_without_timeout");
}

#[test]
fn alloc_from_decoded_length_fixture() {
    check_pair("alloc_from_decoded_length");
}

#[test]
fn unchecked_length_arithmetic_fixture() {
    check_pair("unchecked_length_arithmetic");
}

#[test]
fn panic_unsafe_pool_thread_fixture() {
    check_pair("panic_unsafe_pool_thread");
}

#[test]
fn unused_suppression_fixture() {
    check_pair("unused_suppression");
}

#[test]
fn alloc_in_hot_loop_fixture() {
    check_pair("alloc_in_hot_loop");
}

#[test]
fn every_cataloged_rule_has_a_fixture_pair() {
    let mut missing = Vec::new();
    for rule in rules::catalog() {
        let dir = fixtures_dir().join(rule.id().replace('-', "_"));
        if !dir.join("fire.rs").is_file() || !dir.join("allowed.rs").is_file() {
            missing.push(rule.id().to_string());
        }
    }
    assert!(
        missing.is_empty(),
        "rules without fixture pairs: {missing:?}"
    );
}
