//! Self-hosting integration test: the workspace must lint clean.
//!
//! This is the same sweep `cargo run -p cn-lint` and the CI job perform.
//! Intentional uses of flagged patterns (the hot-swap slot `Mutex` in
//! `cn-serve`, the bounded worker `thread::Builder` loop, ...) carry inline
//! `// cn-lint: allow(...)` suppressions with reasons; anything new that
//! trips a rule fails this test with the rendered diagnostics.

use std::path::Path;

use cn_lint::rules;
use cn_lint::workspace;

#[test]
fn workspace_is_diagnostic_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = workspace::lint_workspace(&root, &rules::catalog())
        .expect("walking the workspace should succeed");
    let rendered: Vec<String> = diags.iter().map(|d| d.render_human()).collect();
    assert!(
        rendered.is_empty(),
        "cn-lint found {} diagnostic(s) in the workspace:\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}
