//@ path: crates/analog/src/fake_compat.rs
// cn-lint: allow(missing-deprecation-note, reason = "fixture: replacement lands in the next PR")
#[deprecated(since = "0.2.0")]
pub fn legacy_entry() {}
