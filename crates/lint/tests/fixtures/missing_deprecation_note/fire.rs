//@ path: crates/analog/src/fake_compat.rs
#[deprecated(since = "0.2.0")] //~ missing-deprecation-note
pub fn legacy_entry() {}
