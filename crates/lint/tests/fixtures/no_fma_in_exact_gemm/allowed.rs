//@ path: crates/tensor/src/ops/gemm/fake_kernel.rs
pub fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        // cn-lint: allow(no-fma-in-exact-gemm, reason = "fixture: opt-in fast path behind a non-exact backend flag")
        acc = x.mul_add(*y, acc);
    }
    acc
}
