//@ path: crates/tensor/src/ops/gemm/fake_kernel.rs
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc = x.mul_add(*y, acc); //~ no-fma-in-exact-gemm
    }
    acc
}
