//@ path: crates/net/src/frame.rs
// The PR 8 InferReply bug, re-introduced: the announced row count sizes
// an allocation before any byte-budget check backs it, so a 12-byte
// hostile frame can demand a 17 GiB Vec.

fn decode_reply(buf: &[u8]) -> Result<Vec<u32>, FrameError> {
    let mut c = Cursor::new(buf);
    let rows = c.u32("rows")? as usize;
    let mut classes = Vec::with_capacity(rows); //~ alloc-from-decoded-length
    for _ in 0..rows {
        classes.push(c.u32("classes")?);
    }
    Ok(classes)
}

fn decode_scratch(buf: &[u8]) -> Vec<f32> {
    let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    vec![0.0f32; n] //~ alloc-from-decoded-length
}

fn reserve_from_wire(buf: &mut impl Buf, out: &mut Vec<u8>) {
    let len = buf.get_u32_le() as usize;
    out.reserve(len); //~ alloc-from-decoded-length
}

fn pick(buf: &[u8], table: &[f32]) -> f32 {
    let at = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    table[at] //~ alloc-from-decoded-length
}
