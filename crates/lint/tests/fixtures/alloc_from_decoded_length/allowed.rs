//@ path: crates/net/src/frame.rs
// The fixed shapes: a decoded count is validated against the bytes
// actually present (or bounded by checked/min/clamp) before it sizes
// anything — plus one deliberately-suppressed site.

fn decode_reply(buf: &[u8]) -> Result<Vec<u32>, FrameError> {
    let mut c = Cursor::new(buf);
    let rows = c.u32("rows")? as usize;
    let need = rows
        .checked_mul(4)
        .ok_or_else(|| bad("row count overflow"))?;
    // The guard vouches for `rows` transitively through `need`.
    if need != c.remaining() {
        return Err(bad("row count not backed by payload bytes"));
    }
    let mut classes = Vec::with_capacity(rows);
    for _ in 0..rows {
        classes.push(c.u32("classes")?);
    }
    Ok(classes)
}

fn decode_clamped(buf: &[u8]) -> Vec<f32> {
    let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    vec![0.0f32; n.min(MAX_ROWS)]
}

fn pick(buf: &[u8], table: &[f32]) -> Option<f32> {
    let at = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    if at >= table.len() {
        return None;
    }
    Some(table[at])
}

fn trusted_scratch(buf: &[u8]) -> Vec<f32> {
    let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    // cn-lint: allow(alloc-from-decoded-length, reason = "fixture: demonstrates a suppressed site; buf comes from the local trusted encoder, never the wire")
    vec![0.0f32; n]
}
