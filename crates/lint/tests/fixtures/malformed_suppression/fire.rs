//@ path: crates/nn/src/fake.rs
fn f() {}
// cn-lint: allow(no-such-rule, reason = "the rule id has a typo")
//~^ malformed-suppression
