//@ path: crates/nn/src/fake.rs
// A well-formed suppression of a known rule parses silently even when
// nothing fires on the next line.
// cn-lint: allow(kernel-zero-skip, reason = "fixture: demonstrates well-formed syntax")
fn f() {}
