//@ path: crates/tensor/src/ops/fake.rs
// A well-formed suppression of a known rule parses cleanly and excuses
// exactly the finding on its line (an allow that excuses nothing is an
// unused-suppression finding — see that rule's fixtures).
fn skip_zero(x: f32) -> bool {
    x == 0.0 // cn-lint: allow(kernel-zero-skip, reason = "fixture: demonstrates well-formed syntax excusing a live finding")
}
