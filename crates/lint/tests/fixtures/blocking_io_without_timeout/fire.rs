//@ path: crates/net/src/fake_frontend.rs
use std::io::Read;
use std::net::{TcpListener, TcpStream};

pub fn accept_forever(listener: &TcpListener) {
    loop {
        let _ = listener.accept(); //~ blocking-io-without-timeout
    }
}

pub fn read_request(stream: &mut TcpStream) -> Vec<u8> {
    let mut buf = vec![0u8; 1024];
    let n = stream.read(&mut buf).unwrap(); //~ blocking-io-without-timeout
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap(); //~ blocking-io-without-timeout
    buf.truncate(n);
    buf
}
