//@ path: crates/net/src/fake_frontend.rs
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

// Compliant: the timeout is configured in the same function as the read.
pub fn read_with_timeout(stream: &mut TcpStream) -> std::io::Result<usize> {
    stream.set_read_timeout(Some(Duration::from_millis(2)))?;
    let mut buf = [0u8; 64];
    stream.read(&mut buf)
}

// Compliant: the listener is switched to non-blocking before accepting.
pub fn accept_nonblocking(listener: &TcpListener) {
    listener.set_nonblocking(true).unwrap();
    let _ = listener.accept();
}

// A function relying on a caller-configured socket states so.
pub fn read_preconfigured(stream: &mut TcpStream) -> std::io::Result<usize> {
    let mut buf = [0u8; 64];
    // cn-lint: allow(blocking-io-without-timeout, reason = "fixture: handler pool sets the read timeout before handing the stream over")
    stream.read(&mut buf)
}

// No socket types in scope: generic readers are not this rule's business.
pub fn read_generic<R: Read>(r: &mut R) -> std::io::Result<usize> {
    let mut buf = [0u8; 64];
    r.read(&mut buf)
}
