//@ path: crates/bench/src/fake_driver.rs
pub fn run_all(jobs: Vec<Job>) {
    let handles: Vec<_> = jobs
        .into_iter()
        .take(4)
        // cn-lint: allow(unbounded-thread-spawn, reason = "fixture: capped at 4 workers, joined below")
        .map(|job| std::thread::spawn(move || job.run()))
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
