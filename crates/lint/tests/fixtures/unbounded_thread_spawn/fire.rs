//@ path: crates/bench/src/fake_driver.rs
pub fn run_all(jobs: Vec<Job>) {
    for job in jobs {
        std::thread::spawn(move || job.run()); //~ unbounded-thread-spawn
    }
}
