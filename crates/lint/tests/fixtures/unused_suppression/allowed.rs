//@ path: crates/tensor/src/ops/fake.rs
// A suppression that is still earning its keep: the finding it excuses
// is live, so the allow is used and nothing leaks.

fn skip_zero(x: f32) -> bool {
    x == 0.0 // cn-lint: allow(kernel-zero-skip, reason = "fixture: zero test is semantic here and non-finite inputs are rejected upstream")
}
