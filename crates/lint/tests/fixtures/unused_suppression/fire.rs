//@ path: crates/tensor/src/ops/fake.rs
// A stale suppression: the float-zero skip it excused was rewritten as
// an integer sentinel long ago, so the allow matches nothing — and
// would silently mask a reintroduced zero-skip at its line.

// cn-lint: allow(kernel-zero-skip, reason = "stale: the excused compare is gone")
//~^ unused-suppression
fn healthy(x: u32) -> bool {
    x == 0
}
