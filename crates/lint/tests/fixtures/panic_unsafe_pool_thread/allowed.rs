//@ path: crates/net/src/pool.rs
// The fixed shape: each iteration's work runs under catch_unwind, so a
// panicking handler costs one connection, not a pool thread — plus one
// deliberately-suppressed site whose death is observed by a join.

fn start(shared: &Shared) -> Vec<std::thread::JoinHandle<()>> {
    (0..4)
        .map(|h| {
            // cn-lint: allow(unbounded-thread-spawn, reason = "fixture: bounded by the map range; joined by the pool owner")
            std::thread::Builder::new()
                .name(format!("handler-{h}"))
                .spawn(move || handler_loop(shared))
                .expect("spawn handler")
        })
        .collect()
}

fn handler_loop(shared: &Shared) {
    loop {
        let conn = shared.conns.pop();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(conn);
        }));
        if unwound.is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn start_watched(shared: &Shared) -> std::thread::JoinHandle<()> {
    // cn-lint: allow(unbounded-thread-spawn, reason = "fixture: exactly one thread; joined below")
    // cn-lint: allow(panic-unsafe-pool-thread, reason = "fixture: demonstrates a suppressed site; the supervisor joins this handle and restarts the thread on panic")
    std::thread::spawn(move || loop {
        shared.tick();
    })
}
