//@ path: crates/net/src/pool.rs
// The cn-net handler-pool bug, re-introduced: a panic in one handler
// kills its pool thread, and the frontend silently loses capacity until
// it serves nothing.

fn start(shared: &Shared) -> Vec<std::thread::JoinHandle<()>> {
    (0..4)
        .map(|h| {
            // cn-lint: allow(unbounded-thread-spawn, reason = "fixture: panic-safety is under test; the pool is bounded by the map range")
            std::thread::Builder::new()
                .name(format!("handler-{h}"))
                .spawn(move || handler_loop(shared)) //~ panic-unsafe-pool-thread
                .expect("spawn handler")
        })
        .collect()
}

fn handler_loop(shared: &Shared) {
    loop {
        let conn = shared.conns.pop();
        handle_connection(conn);
    }
}

fn start_inline(shared: &Shared) -> std::thread::JoinHandle<()> {
    // cn-lint: allow(unbounded-thread-spawn, reason = "fixture: panic-safety is under test; exactly one thread")
    std::thread::spawn(move || loop { //~ panic-unsafe-pool-thread
        shared.tick();
    })
}
