//@ path: crates/nn/src/layers/fake_dropout.rs
// A per-call stream derived by xoring the seed with a multiplied
// counter — the exact Dropout/Trainer bug family.
fn per_call_seed(seed: u64, calls: u64) -> u64 {
    seed ^ calls.wrapping_mul(0x9E37_79B9_7F4A_7C15) //~ collidable-seed-mix
}
