//@ path: crates/nn/src/layers/fake_dropout.rs
fn per_call_seed(seed: u64, calls: u64) -> u64 {
    // cn-lint: allow(collidable-seed-mix, reason = "fixture: legacy derivation pinned by a bit-compat regression test")
    seed ^ calls.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
