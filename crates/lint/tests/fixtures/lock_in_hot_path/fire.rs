//@ path: crates/analog/src/engine/fake_mc.rs
use std::sync::Mutex;

pub fn gather(samples: usize) -> Vec<f32> {
    let results = Mutex::new(Vec::with_capacity(samples)); //~ lock-in-hot-path
    results.into_inner().unwrap()
}
