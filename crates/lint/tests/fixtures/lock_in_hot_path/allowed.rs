//@ path: crates/analog/src/engine/fake_mc.rs
use std::sync::Mutex;

pub struct SwapSlot {
    // cn-lint: allow(lock-in-hot-path, reason = "fixture: locked once per deployment swap, not per sample")
    slot: Mutex<u64>,
}
