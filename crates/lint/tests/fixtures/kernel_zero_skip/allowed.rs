//@ path: crates/tensor/src/ops/fake_axpy.rs
pub fn axpy(a: f32, xs: &[f32], ys: &mut [f32]) {
    for (x, y) in xs.iter().zip(ys.iter_mut()) {
        // cn-lint: allow(kernel-zero-skip, reason = "fixture: inputs are validated finite by the caller")
        if *x == 0.0 {
            continue;
        }
        *y += a * *x;
    }
}
