//@ path: crates/net/src/frame.rs
// The fixed shapes: arithmetic on decoded lengths goes through
// checked/saturating forms or follows a bounding guard — plus one
// deliberately-suppressed site.

fn f32s_budget_ok(buf: &[u8], at: usize) -> Option<bool> {
    let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let end = n.checked_mul(4)?.checked_add(at)?;
    Some(end <= buf.len())
}

fn grow(buf: &[u8], len: usize) -> usize {
    let extra = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    len.saturating_add(extra)
}

fn bounded(buf: &[u8]) -> usize {
    let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if n > MAX_ROWS {
        return 0;
    }
    n * 4
}

fn trusted(buf: &[u8]) -> usize {
    let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    // cn-lint: allow(unchecked-length-arithmetic, reason = "fixture: demonstrates a suppressed site; n is a version byte bounded to 0..=3 by the caller")
    n * 4
}
