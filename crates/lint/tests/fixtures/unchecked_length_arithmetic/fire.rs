//@ path: crates/net/src/frame.rs
// The Cursor::f32s bug, re-introduced: `n * 4` wraps for a hostile `n`
// near usize::MAX, so the byte-budget check passes and the decode loop
// runs away.

fn f32s_budget_ok(buf: &[u8], at: usize) -> bool {
    let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let end = at + n * 4; //~ unchecked-length-arithmetic
    end <= buf.len()
}

fn grow(buf: &[u8], mut len: usize) -> usize {
    let extra = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    len += extra; //~ unchecked-length-arithmetic
    len
}

fn scale(buf: &mut impl Buf) -> usize {
    let words = buf.get_u32_le() as usize;
    words << 2 //~ unchecked-length-arithmetic
}
