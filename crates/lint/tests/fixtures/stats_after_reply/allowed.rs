//@ path: crates/serve/src/fake_worker.rs
fn worker_loop(batch: Vec<Request>, shared: &Shared) {
    for request in batch {
        let _ = request.tx.send(Reply::default());
    }
    // cn-lint: allow(stats-after-reply, reason = "fixture: counter feeds an end-of-run report, not live stats()")
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
}
