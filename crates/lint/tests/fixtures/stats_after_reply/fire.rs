//@ path: crates/serve/src/fake_worker.rs
fn worker_loop(batch: Vec<Request>, shared: &Shared) {
    for request in batch {
        let _ = request.tx.send(Reply::default());
    }
    shared.stats.requests.fetch_add(1, Ordering::Relaxed); //~ stats-after-reply
}
