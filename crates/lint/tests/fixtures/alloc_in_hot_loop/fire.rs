//@ path: crates/serve/src/fake_worker.rs

pub fn worker_loop(n: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(n); //~ alloc-in-hot-loop
    loop {
        let staged = vec![0.0f32; n]; //~ alloc-in-hot-loop
        let copied = staged.to_vec(); //~ alloc-in-hot-loop
        out = copied.clone(); //~ alloc-in-hot-loop
        if out.len() >= n {
            break;
        }
    }
    out
}

// Not a hot function: identical calls carry no finding.
pub fn build_once(n: usize) -> Vec<f32> {
    let seed = Vec::with_capacity(n);
    seed.to_vec()
}
