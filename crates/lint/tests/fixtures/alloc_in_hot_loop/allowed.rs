//@ path: crates/serve/src/fake_worker.rs

pub fn worker_loop(n: usize) -> Vec<f32> {
    // cn-lint: allow(alloc-in-hot-loop, reason = "fixture: grown once per worker at startup, before the steady-state loop")
    let out = Vec::with_capacity(n);
    out
}
