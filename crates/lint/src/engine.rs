//! The rule engine: diagnostics, the [`Rule`] trait, suppression
//! filtering and the driver that runs a rule set over parsed files.

use crate::source::SourceFile;

/// How serious a finding is. Both levels fail CI — the distinction is
/// informational (a `Warning` marks heuristic rules whose findings may
/// legitimately end in a suppression rather than a code change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Heuristic finding: verify, then fix or suppress with a reason.
    Warning,
    /// Contract violation: fix it (suppression needs a strong reason).
    Error,
}

impl Severity {
    /// Lowercase name used in human and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, pointing at a token in a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule identifier (kebab-case).
    pub rule: &'static str,
    /// Severity of the owning rule.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation, including what to do instead.
    pub message: String,
    /// Byte offset the finding anchors to (used for test-span filtering).
    pub offset: usize,
}

impl Diagnostic {
    /// `file:line:col severity[rule] message` — the human format.
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}:{} {}[{}] {}",
            self.path,
            self.line,
            self.col,
            self.severity.name(),
            self.rule,
            self.message
        )
    }

    /// One JSON object (the `--format json` element).
    pub fn render_json(&self) -> String {
        format!(
            r#"{{"rule":"{}","severity":"{}","path":"{}","line":{},"col":{},"message":"{}"}}"#,
            self.rule,
            self.severity.name(),
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Collects findings for one (rule, file) pair; rules report token
/// indices and the sink resolves positions.
pub struct Sink<'a> {
    file: &'a SourceFile,
    rule: &'static str,
    severity: Severity,
    out: Vec<Diagnostic>,
}

impl<'a> Sink<'a> {
    /// Reports a finding anchored at token `tok_index`.
    pub fn report(&mut self, tok_index: usize, message: impl Into<String>) {
        let t = &self.file.tokens[tok_index];
        self.out.push(Diagnostic {
            rule: self.rule,
            severity: self.severity,
            path: self.file.path.clone(),
            line: t.line,
            col: t.col,
            message: message.into(),
            offset: t.start,
        });
    }
}

/// A single lint rule.
pub trait Rule {
    /// Stable kebab-case identifier (`collidable-seed-mix`).
    fn id(&self) -> &'static str;

    /// Default severity of this rule's findings.
    fn severity(&self) -> Severity {
        Severity::Error
    }

    /// One-line description for `--list-rules` and the docs.
    fn summary(&self) -> &'static str;

    /// Whether the rule runs on a file at this workspace-relative path.
    fn applies_to(&self, path: &str) -> bool {
        let _ = path;
        true
    }

    /// Whether findings inside `#[cfg(test)]`/`#[test]` spans are
    /// dropped (most contracts bind production code only).
    fn skip_test_code(&self) -> bool {
        true
    }

    /// Scans the file, reporting findings into `sink`.
    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>);
}

/// Rule id of the engine-level check on `cn-lint` comments themselves.
pub const MALFORMED_SUPPRESSION: &str = "malformed-suppression";

/// Rule id of the engine-level check for suppressions that no longer
/// suppress anything.
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";

/// Runs `rules` over `files` and returns the surviving diagnostics,
/// sorted by (path, line, col, rule).
///
/// The engine itself contributes two checks on the suppression comments:
///
/// - [`MALFORMED_SUPPRESSION`]: a comment that contains `cn-lint` but
///   does not parse as `allow(rule, reason = "…")`, or that names a rule
///   no one registered — a typo'd suppression that silently suppresses
///   nothing is worse than no suppression at all.
/// - [`UNUSED_SUPPRESSION`]: a well-formed suppression for a known rule
///   that suppressed nothing on this run — the code it excused has been
///   fixed or moved, and the stale comment would mask a future
///   regression at that line. Delete it.
pub fn run(files: &[SourceFile], rules: &[Box<dyn Rule>]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        let mut used = vec![false; file.suppressions.len()];
        for rule in rules {
            if !rule.applies_to(&file.path) {
                continue;
            }
            let mut sink = Sink {
                file,
                rule: rule.id(),
                severity: rule.severity(),
                out: Vec::new(),
            };
            rule.check(file, &mut sink);
            for d in sink.out {
                if rule.skip_test_code() && file.in_test_code(d.offset) {
                    continue;
                }
                if let Some(si) = suppression_for(file, rule.id(), d.line) {
                    used[si] = true;
                    continue;
                }
                diags.push(d);
            }
        }
        // Engine-level checks on the suppression comments themselves.
        for m in &file.malformed {
            diags.push(Diagnostic {
                rule: MALFORMED_SUPPRESSION,
                severity: Severity::Error,
                path: file.path.clone(),
                line: m.line,
                col: m.col,
                message: format!("malformed cn-lint comment: {}", m.problem),
                offset: 0,
            });
        }
        for (si, s) in file.suppressions.iter().enumerate() {
            if !rules.iter().any(|r| r.id() == s.rule) {
                diags.push(Diagnostic {
                    rule: MALFORMED_SUPPRESSION,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "suppression names unknown rule `{}` (see --list-rules)",
                        s.rule
                    ),
                    offset: 0,
                });
            } else if !used[si] {
                diags.push(Diagnostic {
                    rule: UNUSED_SUPPRESSION,
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "suppression of `{}` matched no finding: the excused code is \
                         gone, and a stale allow would mask a future regression here; \
                         delete the comment",
                        s.rule
                    ),
                    offset: 0,
                });
            }
        }
    }
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    diags
}

/// Index of the suppression covering (`rule`, `line`), if any.
fn suppression_for(file: &SourceFile, rule: &str, line: u32) -> Option<usize> {
    file.suppressions
        .iter()
        .position(|s| s.rule == rule && s.applies_to == line)
}

/// Renders diagnostics as a SARIF 2.1.0 log (one run, one artifact per
/// distinct path) for code-scanning upload from CI.
///
/// `rules` supplies the driver's rule metadata; the two engine-level
/// rule ids are appended so every result's `ruleId` resolves.
pub fn render_sarif(diags: &[Diagnostic], rules: &[Box<dyn Rule>]) -> String {
    let mut rule_ids: Vec<(&str, &str)> = rules.iter().map(|r| (r.id(), r.summary())).collect();
    rule_ids.push((
        MALFORMED_SUPPRESSION,
        "cn-lint comment does not parse or names an unknown rule",
    ));
    rule_ids.push((
        UNUSED_SUPPRESSION,
        "suppression matched no finding and would mask a future regression",
    ));

    let rules_json: Vec<String> = rule_ids
        .iter()
        .map(|(id, summary)| {
            format!(
                r#"{{"id":"{}","shortDescription":{{"text":"{}"}}}}"#,
                json_escape(id),
                json_escape(summary)
            )
        })
        .collect();

    let results_json: Vec<String> = diags
        .iter()
        .map(|d| {
            let rule_index = rule_ids
                .iter()
                .position(|(id, _)| *id == d.rule)
                .unwrap_or(0);
            let level = match d.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            format!(
                concat!(
                    r#"{{"ruleId":"{}","ruleIndex":{},"level":"{}","#,
                    r#""message":{{"text":"{}"}},"locations":[{{"physicalLocation":"#,
                    r#"{{"artifactLocation":{{"uri":"{}"}},"region":{{"startLine":{},"startColumn":{}}}}}}}]}}"#
                ),
                json_escape(d.rule),
                rule_index,
                level,
                json_escape(&d.message),
                json_escape(&d.path),
                d.line,
                d.col
            )
        })
        .collect();

    format!(
        concat!(
            r#"{{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","#,
            r#""runs":[{{"tool":{{"driver":{{"name":"cn-lint","version":"{}","rules":[{}]}}}},"#,
            r#""results":[{}]}}]}}"#
        ),
        env!("CARGO_PKG_VERSION"),
        rules_json.join(","),
        results_json.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlagEveryFoo;
    impl Rule for FlagEveryFoo {
        fn id(&self) -> &'static str {
            "flag-foo"
        }
        fn summary(&self) -> &'static str {
            "flags the identifier foo"
        }
        fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
            for i in 0..file.tokens.len() {
                if file.is_ident(i, "foo") {
                    sink.report(i, "found foo");
                }
            }
        }
    }

    fn rules() -> Vec<Box<dyn Rule>> {
        vec![Box::new(FlagEveryFoo)]
    }

    #[test]
    fn fires_and_positions() {
        let f = SourceFile::parse("a.rs", "let x = 1;\nlet foo = 2;\n");
        let diags = run(&[f], &rules());
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].line, diags[0].col), (2, 5));
        assert_eq!(diags[0].rule, "flag-foo");
    }

    #[test]
    fn trailing_allow_suppresses() {
        let f = SourceFile::parse(
            "a.rs",
            "let foo = 2; // cn-lint: allow(flag-foo, reason = \"test\")\n",
        );
        assert!(run(&[f], &rules()).is_empty());
    }

    #[test]
    fn standalone_allow_suppresses_next_line() {
        let f = SourceFile::parse(
            "a.rs",
            "// cn-lint: allow(flag-foo, reason = \"test\")\nlet foo = 2;\n",
        );
        assert!(run(&[f], &rules()).is_empty());
    }

    #[test]
    fn allow_for_another_rule_does_not_suppress() {
        let f = SourceFile::parse(
            "a.rs",
            "// cn-lint: allow(kernel-zero-skip, reason = \"x\")\nlet foo = 2;\n",
        );
        // One finding survives, plus the unknown-rule finding (the test
        // registry only knows flag-foo).
        let diags = run(&[f], &rules());
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().any(|d| d.rule == "flag-foo"));
        assert!(diags.iter().any(|d| d.rule == MALFORMED_SUPPRESSION));
    }

    #[test]
    fn test_code_is_skipped_by_default() {
        let f = SourceFile::parse("a.rs", "#[cfg(test)]\nmod t { fn g() { let foo = 1; } }\n");
        assert!(run(&[f], &rules()).is_empty());
    }

    #[test]
    fn malformed_comment_is_a_finding() {
        let f = SourceFile::parse("a.rs", "// cn-lint: allow(Bad Name)\n");
        let diags = run(&[f], &rules());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, MALFORMED_SUPPRESSION);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn unused_suppression_is_a_finding() {
        // Well-formed, known rule, but nothing on the line fires.
        let f = SourceFile::parse(
            "a.rs",
            "let bar = 2; // cn-lint: allow(flag-foo, reason = \"stale\")\n",
        );
        let diags = run(&[f], &rules());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, UNUSED_SUPPRESSION);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn used_suppression_is_not_unused() {
        let f = SourceFile::parse(
            "a.rs",
            "let foo = 2; // cn-lint: allow(flag-foo, reason = \"test\")\nlet foo = 3;\n",
        );
        let diags = run(&[f], &rules());
        // Line 1's finding is suppressed (and the suppression is used);
        // line 2's finding survives.
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].rule, diags[0].line), ("flag-foo", 2));
    }

    #[test]
    fn unknown_rule_suppression_is_not_double_reported() {
        let f = SourceFile::parse("a.rs", "// cn-lint: allow(no-such-rule, reason = \"x\")\n");
        let diags = run(&[f], &rules());
        // Malformed (unknown rule) only — not also unused.
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, MALFORMED_SUPPRESSION);
    }

    #[test]
    fn sarif_output_is_well_formed() {
        let f = SourceFile::parse("a.rs", "let foo = 2;\n");
        let diags = run(&[f], &rules());
        let sarif = render_sarif(&diags, &rules());
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"name\":\"cn-lint\""));
        assert!(sarif.contains("\"ruleId\":\"flag-foo\""));
        assert!(sarif.contains("\"startLine\":1"));
        // Engine-level rules are always present in the driver metadata.
        assert!(sarif.contains("\"id\":\"unused-suppression\""));
        assert!(sarif.contains("\"id\":\"malformed-suppression\""));
    }

    #[test]
    fn sarif_with_no_findings_has_empty_results() {
        let sarif = render_sarif(&[], &rules());
        assert!(sarif.ends_with("\"results\":[]}]}"));
    }
}
