//! `blocking-io-without-timeout` — socket reads/accepts with no timeout.
//!
//! The cn-net frontend's contract: every connection handler interleaves
//! reply flushing, drain checks and socket reads, which only works if no
//! socket call can block indefinitely — a peer that stops sending (but
//! keeps the connection open) would otherwise pin a pool handler forever
//! and a drain would never complete. The rule: any function that works
//! with `TcpStream`/`TcpListener` and performs a blocking read or accept
//! must also configure a timeout (`set_read_timeout`/`set_write_timeout`)
//! or switch the socket to non-blocking (`set_nonblocking`) *in the same
//! function* — the only scope a reader can audit locally. A function
//! relying on a caller-configured socket states that in a suppression.

use crate::engine::{Rule, Sink};
use crate::source::SourceFile;

/// Socket types whose presence marks a function as doing network I/O.
const SOCKET_TYPES: &[&str] = &["TcpStream", "TcpListener"];

/// Method calls that block indefinitely on an unconfigured socket.
const BLOCKING_CALLS: &[&str] = &[
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "accept",
];

/// Calls that bound (or remove) the blocking, satisfying the contract.
const SILENCERS: &[&str] = &["set_read_timeout", "set_write_timeout", "set_nonblocking"];

/// Flags blocking socket reads/accepts in functions that never configure
/// a timeout on the socket.
pub struct BlockingIoWithoutTimeout;

impl Rule for BlockingIoWithoutTimeout {
    fn id(&self) -> &'static str {
        "blocking-io-without-timeout"
    }

    fn summary(&self) -> &'static str {
        "socket read/accept with no timeout in scope can hang a handler forever; set_read_timeout/set_write_timeout (or set_nonblocking) in the same fn"
    }

    fn applies_to(&self, path: &str) -> bool {
        // Production code only: integration tests and benches drive
        // sockets they fully control.
        !path.contains("/tests/") && !path.contains("/benches/")
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        for span in &file.fn_spans {
            let Some(body_start) = span.body_start else {
                continue;
            };
            // Token range of the whole item: from the `fn` keyword to the
            // body's closing brace (the signature's types count — a
            // `stream: &mut TcpStream` parameter marks the function).
            let first = match file.tokens.iter().position(|t| t.start >= span.start) {
                Some(i) => i,
                None => continue,
            };
            let body_end = file.matching_close(body_start);

            let mentions_socket =
                (first..body_end).any(|i| SOCKET_TYPES.iter().any(|ty| file.is_ident(i, ty)));
            if !mentions_socket {
                continue;
            }
            let has_silencer =
                (first..body_end).any(|i| SILENCERS.iter().any(|s| file.is_ident(i, s)));
            if has_silencer {
                continue;
            }
            for i in body_start..body_end {
                let is_blocking_call = file.is_punct(i, ".")
                    && BLOCKING_CALLS.iter().any(|c| file.is_ident(i + 1, c))
                    && file.is_punct(i + 2, "(");
                if is_blocking_call {
                    sink.report(
                        i + 1,
                        "blocking socket call with no timeout configured in this fn: a \
                         stalled peer pins the thread forever and drains never finish; \
                         call set_read_timeout/set_write_timeout (or set_nonblocking) on \
                         the socket in this function, or suppress stating where the \
                         timeout is configured",
                    );
                }
            }
        }
    }
}
