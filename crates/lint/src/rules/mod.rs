//! The rule catalog.
//!
//! Every rule encodes a contract this workspace has already paid to
//! learn (the motivating incident is cited in each rule's module docs).
//! The original rules are token-level visitors over a [`SourceFile`];
//! the hostile-input rules added later run on the [`crate::syntax`]
//! tree and the [`crate::dataflow`] taint analysis. All of them must
//! stay dependency-free and conservative — a rule that cries wolf gets
//! suppressed into uselessness.

use crate::engine::Rule;
use crate::source::SourceFile;

mod alloc_from_decoded_length;
mod alloc_in_hot_loop;
mod blocking_io_without_timeout;
mod collidable_seed_mix;
mod kernel_zero_skip;
mod lock_in_hot_path;
mod missing_deprecation_note;
mod no_fma_in_exact_gemm;
mod panic_unsafe_pool_thread;
mod stats_after_reply;
mod unbounded_thread_spawn;
mod unchecked_length_arithmetic;

pub use alloc_from_decoded_length::AllocFromDecodedLength;
pub use alloc_in_hot_loop::AllocInHotLoop;
pub use blocking_io_without_timeout::BlockingIoWithoutTimeout;
pub use collidable_seed_mix::CollidableSeedMix;
pub use kernel_zero_skip::KernelZeroSkip;
pub use lock_in_hot_path::LockInHotPath;
pub use missing_deprecation_note::MissingDeprecationNote;
pub use no_fma_in_exact_gemm::NoFmaInExactGemm;
pub use panic_unsafe_pool_thread::PanicUnsafePoolThread;
pub use stats_after_reply::StatsAfterReply;
pub use unbounded_thread_spawn::UnboundedThreadSpawn;
pub use unchecked_length_arithmetic::UncheckedLengthArithmetic;

/// The full catalog, in stable order.
pub fn catalog() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(CollidableSeedMix),
        Box::new(KernelZeroSkip),
        Box::new(NoFmaInExactGemm),
        Box::new(UnboundedThreadSpawn),
        Box::new(LockInHotPath),
        Box::new(StatsAfterReply),
        Box::new(MissingDeprecationNote),
        Box::new(BlockingIoWithoutTimeout),
        Box::new(AllocFromDecodedLength),
        Box::new(UncheckedLengthArithmetic),
        Box::new(PanicUnsafePoolThread),
        Box::new(AllocInHotLoop),
    ]
}

/// Normalizes a numeric literal for comparison: underscores stripped,
/// lowercased, and any alphabetic type suffix removed (`0x9E37_79B9u64`
/// → `0x9e3779b9`). Hex/octal/binary prefixes survive.
pub(crate) fn normalize_number(text: &str) -> String {
    let mut s: String = text
        .chars()
        .filter(|&c| c != '_')
        .map(|c| c.to_ascii_lowercase())
        .collect();
    // Strip a type suffix: for hex literals only `usize`/`isize`-style
    // suffixes that follow the digits are ambiguous with hex digits, so
    // strip known suffixes explicitly.
    for suffix in [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        "f64", "f32",
    ] {
        if let Some(stripped) = s.strip_suffix(suffix) {
            // Don't mistake the trailing hex digits of e.g. `0xf32` for a
            // suffix unless digits remain.
            if stripped.len() > 2 || (!stripped.is_empty() && !s.starts_with("0x")) {
                s = stripped.to_string();
                break;
            }
        }
    }
    s
}

/// Whether a number token (by normalized text) is a floating-point zero:
/// `0.0`, `0.`, `0e0`, `0f32` (suffix already stripped → trailing dot or
/// a fractional part of zeros).
pub(crate) fn is_float_zero(raw: &str) -> bool {
    let norm = normalize_number(raw);
    let is_float_shaped = norm.contains('.')
        || norm.contains('e')
        || raw.to_ascii_lowercase().contains("f32")
        || raw.to_ascii_lowercase().contains("f64");
    is_float_shaped && norm.parse::<f64>() == Ok(0.0)
}

/// Whether token `tok_index` sits inside a `use` declaration (walking
/// back over path segments, grouping braces and commas to the keyword —
/// `statement_start` would stop at the `{` of a grouped import).
pub(crate) fn in_use_decl(file: &SourceFile, tok_index: usize) -> bool {
    use crate::lexer::TokenKind;
    let mut j = tok_index;
    while j > 0 {
        if file.is_ident(j - 1, "use") {
            return true;
        }
        let path_like = matches!(file.tok(j - 1), "::" | "," | "{" | "*")
            || file.tokens[j - 1].kind == TokenKind::Ident;
        if !path_like {
            return false;
        }
        j -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_normalization() {
        assert_eq!(
            normalize_number("0x9E37_79B9_7F4A_7C15"),
            "0x9e3779b97f4a7c15"
        );
        assert_eq!(normalize_number("0x9E37_79B9u64"), "0x9e3779b9");
        assert_eq!(normalize_number("1_000usize"), "1000");
        assert_eq!(normalize_number("0.5f32"), "0.5");
    }

    #[test]
    fn float_zero_detection() {
        for yes in ["0.0", "0.", "0.000", "0.0f32", "0f64", "0.0_f32", "0e0"] {
            assert!(is_float_zero(yes), "{yes}");
        }
        for no in ["0", "0usize", "0u64", "1.0", "0.5", "0x0"] {
            assert!(!is_float_zero(no), "{no}");
        }
    }

    #[test]
    fn use_decl_detection() {
        let f = SourceFile::parse("x.rs", "use std::sync::Mutex;\nlet m = Mutex::new(1);\n");
        let first = f
            .tokens
            .iter()
            .position(|t| f.text[t.start..t.end] == *"Mutex")
            .unwrap();
        assert!(in_use_decl(&f, first));
        let second = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| f.text[t.start..t.end] == *"Mutex")
            .nth(1)
            .unwrap()
            .0;
        assert!(!in_use_decl(&f, second));
    }
}
