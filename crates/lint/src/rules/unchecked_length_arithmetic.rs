//! `unchecked-length-arithmetic` — raw arithmetic on untrusted lengths.
//!
//! PR 8's `Cursor::f32s` bug: the byte-budget check computed `4 * n`
//! with plain multiplication, so `n = usize::MAX / 2` wrapped the
//! product small, passed the check, and the decode loop ran away. On a
//! length decoded from hostile input, `*`, `+` and `<<` must be their
//! `checked_`/`saturating_` forms (whose `None` is the error path the
//! attacker deserves), or follow a guard that already bounded the
//! operand.
//!
//! Taint sources, propagation and guard clearing are shared with
//! [`alloc-from-decoded-length`](crate::rules::AllocFromDecodedLength)
//! via [`crate::dataflow`].

use crate::dataflow::{self, EventKind};
use crate::engine::{Rule, Sink};
use crate::source::SourceFile;

/// Flags `*`/`+`/`<<` on lengths decoded from untrusted input.
pub struct UncheckedLengthArithmetic;

impl Rule for UncheckedLengthArithmetic {
    fn id(&self) -> &'static str {
        "unchecked-length-arithmetic"
    }

    fn summary(&self) -> &'static str {
        "raw *, + or << on a decoded length can wrap past a later bounds check; use checked_mul/checked_add"
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        for ev in dataflow::analyze(file) {
            if ev.kind == EventKind::Arith {
                sink.report(
                    ev.tok,
                    format!(
                        "`{}` on a length decoded from untrusted input can wrap and \
                         defeat a later bounds check (the Cursor::f32s 4*n bug); use \
                         checked_mul/checked_add and treat overflow as a malformed frame",
                        ev.what
                    ),
                );
            }
        }
    }
}
