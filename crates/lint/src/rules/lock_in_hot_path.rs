//! `lock-in-hot-path` — Mutex/RwLock in per-sample code paths.
//!
//! PR 4 replaced a per-sample `Mutex<Vec>` gather in `engine::monte_carlo`
//! with lock-free per-worker buffers: a lock acquired once per sample (or
//! per matrix row) serializes exactly the code the workspace exists to
//! parallelize. In the kernel tree (`tensor::ops`), the inference engine
//! (`analog::engine`) and the serving data plane (`serve::{server,fleet}`)
//! a blocking lock is presumed hot until justified — a provably cold lock
//! (acquired once per deployment swap, not per batch) is suppressed with
//! that argument.

use crate::engine::{Rule, Sink};
use crate::lexer::TokenKind;
use crate::rules::in_use_decl;
use crate::source::SourceFile;

/// Paths where a blocking lock is presumed to sit on a hot path.
const HOT_PATHS: &[&str] = &[
    "crates/tensor/src/ops/",
    "crates/analog/src/engine/",
    "crates/serve/src/server.rs",
    "crates/serve/src/fleet.rs",
];

/// Lock types that block.
const LOCK_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];

/// Flags blocking lock types in the kernel/engine/serving hot paths.
pub struct LockInHotPath;

impl Rule for LockInHotPath {
    fn id(&self) -> &'static str {
        "lock-in-hot-path"
    }

    fn summary(&self) -> &'static str {
        "Mutex/RwLock in a per-sample path serializes the parallel work; prefer per-worker buffers/atomics"
    }

    fn applies_to(&self, path: &str) -> bool {
        HOT_PATHS.iter().any(|p| path.contains(p))
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        for i in 0..file.tokens.len() {
            if file.tokens[i].kind != TokenKind::Ident || !LOCK_TYPES.contains(&file.tok(i)) {
                continue;
            }
            // Imports are just names; the usage sites carry the finding.
            if in_use_decl(file, i) {
                continue;
            }
            sink.report(
                i,
                "blocking lock in a hot path: a per-sample lock serialized the Monte-Carlo \
                 gather (fixed in the engine with per-worker buffers); use lock-free \
                 per-worker state or atomics, or suppress with an argument for why this \
                 lock is cold (e.g. taken once per deployment swap, not per batch)",
            );
        }
    }
}
