//! `alloc-from-decoded-length` — allocation sized by untrusted input.
//!
//! PR 8's InferReply bug: `InferReply::decode` called
//! `Vec::with_capacity(count)` with a `count` read straight off the
//! wire, before checking it against the bytes actually present — a
//! 12-byte hostile frame could demand a 17 GiB allocation. The fix
//! (validate decoded lengths against `remaining()` before allocating)
//! is a contract every decoder must keep, and this rule machine-checks
//! it: a length that flows from a decode source (`from_le_bytes`,
//! `get_u32_le`, cursor reads, JSON numbers cast to integers) into
//! `Vec::with_capacity` / `vec![_; n]` / `reserve` / `resize` — or
//! into a slice index — without passing a bounding guard
//! (`checked_*`, `min`/`clamp`, or a comparison that diverges) is a
//! finding.
//!
//! The dataflow model is deliberately conservative (see
//! [`crate::dataflow`]); the remedy is either a real bounds check
//! against the available bytes or a suppression stating why the value
//! is trusted.

use crate::dataflow::{self, EventKind};
use crate::engine::{Rule, Sink};
use crate::source::SourceFile;

/// Flags allocations and indexing sized by unvalidated decoded lengths.
pub struct AllocFromDecodedLength;

impl Rule for AllocFromDecodedLength {
    fn id(&self) -> &'static str {
        "alloc-from-decoded-length"
    }

    fn summary(&self) -> &'static str {
        "allocation or index sized by a decoded length with no bounds check; validate against available bytes first"
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        for ev in dataflow::analyze(file) {
            match ev.kind {
                EventKind::Alloc => sink.report(
                    ev.tok,
                    format!(
                        "`{}` sized by a length decoded from untrusted input: a hostile \
                         frame can demand an arbitrary allocation (the InferReply 17 GiB \
                         bug); check the length against the bytes actually available \
                         (or checked_*/min/clamp it) before allocating",
                        ev.what
                    ),
                ),
                EventKind::Index => sink.report(
                    ev.tok,
                    "slice indexed by a value decoded from untrusted input with no bounds \
                     check: a hostile frame can panic the decoder; validate the index \
                     against the slice length first",
                ),
                EventKind::Arith => {}
            }
        }
    }
}
