//! `stats-after-reply` — ordering of stats updates vs. reply dispatch.
//!
//! PR 5's stale-stats fix: cn-serve workers used to bump request/batch
//! counters *after* sending replies, so a client that read `stats()`
//! right after receiving its reply raced the worker and saw stale totals
//! (an intermittent batcher-test flake). The contract: within a serving
//! worker function, every stats mutation (`fetch_add`/`record` on the
//! stats collector) happens textually before the reply `send`. This is a
//! heuristic ordering check — `Warning` severity — because token order
//! inside one function body is a proxy for happens-before, not a proof.

use crate::engine::{Rule, Severity, Sink};
use crate::source::SourceFile;

/// Flags stats-collector mutations placed after a reply `send` in the
/// same serving-worker function.
pub struct StatsAfterReply;

impl Rule for StatsAfterReply {
    fn id(&self) -> &'static str {
        "stats-after-reply"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn summary(&self) -> &'static str {
        "stats recorded after reply dispatch: clients reading stats() right after a reply see stale totals"
    }

    fn applies_to(&self, path: &str) -> bool {
        path.contains("crates/serve/src/")
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        for span in &file.fn_spans {
            let Some(body_start) = span.body_start else {
                continue;
            };
            let body_end = file.matching_close(body_start);
            // Last `.send(` in the body.
            let mut last_send = None;
            for i in body_start..body_end {
                if file.is_punct(i, ".")
                    && file.is_ident(i + 1, "send")
                    && file.is_punct(i + 2, "(")
                {
                    last_send = Some(i);
                }
            }
            let Some(send_idx) = last_send else {
                continue;
            };
            // Any stats mutation after it?
            for i in send_idx..body_end {
                let is_mutation = file.is_punct(i, ".")
                    && (file.is_ident(i + 1, "fetch_add") || file.is_ident(i + 1, "record"))
                    && file.is_punct(i + 2, "(");
                if !is_mutation {
                    continue;
                }
                // Only flag mutations on a stats-looking receiver chain,
                // so unrelated atomics don't trip the rule.
                let stmt = file.statement_start(i);
                let mentions_stats =
                    (stmt..i).any(|j| file.is_ident(j, "stats") || file.is_ident(j, "latency"));
                if mentions_stats {
                    sink.report(
                        i + 1,
                        "stats update after the reply send in a serving worker: a client \
                         that reads stats() immediately after its reply races this code and \
                         sees stale totals (the PR 5 batcher flake); move the stats update \
                         before the dispatch loop",
                    );
                }
            }
        }
    }
}
