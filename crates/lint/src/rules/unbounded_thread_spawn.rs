//! `unbounded-thread-spawn` — OS threads outside `cn_tensor::parallel`.
//!
//! PR 4's thread-per-chunk regression: a helper that called
//! `std::thread::spawn` per work item fanned out to hundreds of OS
//! threads for small-chunk callers. All production parallelism goes
//! through `cn_tensor::parallel` (capped at `num_threads()` workers);
//! any other spawn site must be provably bounded and joined, and says so
//! in a suppression reason.

use crate::engine::{Rule, Sink};
use crate::source::SourceFile;

/// Flags `thread::spawn` / `thread::Builder` outside the sanctioned
/// parallelism module.
pub struct UnboundedThreadSpawn;

impl Rule for UnboundedThreadSpawn {
    fn id(&self) -> &'static str {
        "unbounded-thread-spawn"
    }

    fn summary(&self) -> &'static str {
        "OS-thread spawn outside cn_tensor::parallel; use the capped helpers or justify the bound"
    }

    fn applies_to(&self, path: &str) -> bool {
        // The sanctioned implementation itself.
        !path.ends_with("crates/tensor/src/parallel.rs") && path != "crates/tensor/src/parallel.rs"
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        for i in 0..file.tokens.len() {
            if !file.is_ident(i, "thread") || !file.is_punct(i + 1, "::") {
                continue;
            }
            let target = i + 2;
            if file.is_ident(target, "spawn") || file.is_ident(target, "Builder") {
                sink.report(
                    target,
                    "OS-thread spawn outside cn_tensor::parallel: unbounded spawning caused \
                     the thread-per-chunk regression; use parallel_chunks_mut/parallel_ranges \
                     or suppress, stating the worker bound and who joins the threads",
                );
            }
        }
    }
}
