//! `missing-deprecation-note` — `#[deprecated]` must point somewhere.
//!
//! The engine migration (PR 3) deprecated the legacy Monte-Carlo entry
//! points with notes naming the exact replacement
//! (`engine::monte_carlo` + backend). A bare `#[deprecated]` tells
//! callers only that they are wrong, not what to do; every deprecation
//! in this workspace carries a `note = "use …"`.

use crate::engine::{Rule, Sink};
use crate::source::SourceFile;

/// Flags `#[deprecated]` attributes without a `note` key.
pub struct MissingDeprecationNote;

impl Rule for MissingDeprecationNote {
    fn id(&self) -> &'static str {
        "missing-deprecation-note"
    }

    fn summary(&self) -> &'static str {
        "#[deprecated] without note = \"use …\": deprecations must name the replacement"
    }

    // A deprecation in test code still reaches rustdoc/users of the
    // fixture; check everywhere.
    fn skip_test_code(&self) -> bool {
        false
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        for i in 0..file.tokens.len().saturating_sub(2) {
            if !(file.is_punct(i, "#")
                && file.is_punct(i + 1, "[")
                && file.is_ident(i + 2, "deprecated"))
            {
                continue;
            }
            // `#[deprecated]` — no arguments at all.
            if file.is_punct(i + 3, "]") {
                sink.report(i + 2, MESSAGE);
                continue;
            }
            // `#[deprecated(…)]` — look for a `note` key at depth 1.
            if file.is_punct(i + 3, "(") {
                let close = file.matching_close(i + 3);
                let has_note =
                    ((i + 4)..close).any(|j| file.is_ident(j, "note") && file.is_punct(j + 1, "="));
                if !has_note {
                    sink.report(i + 2, MESSAGE);
                }
            }
        }
    }
}

const MESSAGE: &str = "#[deprecated] without a note: add note = \"use …\" naming the \
                       replacement (the engine-migration shims set the pattern)";
