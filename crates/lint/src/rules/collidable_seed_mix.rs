//! `collidable-seed-mix` — XOR/add of a seed with a multiplied counter.
//!
//! The Dropout/Trainer/protection bug family (fixed across PRs 4–5, with
//! the last live instance in `SeededRng::fork` itself): deriving a child
//! seed as `seed ^ counter · φ64` or `(seed + counter) · φ64` looks like
//! splitmix but is not — the raw multiplied counter is combined with the
//! seed *before* any finalization, so related `(seed, counter)` pairs
//! cancel exactly and produce colliding streams. Child streams must be
//! derived through `SeededRng::fork`, which finalizes both words.

use crate::engine::{Rule, Sink};
use crate::lexer::TokenKind;
use crate::rules::normalize_number;
use crate::source::SourceFile;

/// The golden-ratio multipliers the bug family reaches for.
const GOLDEN: &[&str] = &["0x9e3779b9", "0x9e3779b97f4a7c15"];

/// Flags seed mixes that combine a golden-ratio-multiplied counter with
/// another word via `^`/`+` without prior finalization.
pub struct CollidableSeedMix;

impl Rule for CollidableSeedMix {
    fn id(&self) -> &'static str {
        "collidable-seed-mix"
    }

    fn summary(&self) -> &'static str {
        "xor/add of a seed with a golden-ratio-multiplied counter collides for related inputs; \
         derive child streams via SeededRng::fork"
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        for i in 0..file.tokens.len() {
            if file.tokens[i].kind != TokenKind::Number {
                continue;
            }
            if !GOLDEN.contains(&normalize_number(file.tok(i)).as_str()) {
                continue;
            }
            if wrapping_mul_mix(file, i) || bare_mul_mix(file, i) {
                sink.report(
                    i,
                    "collidable seed mix: combining a seed with a golden-ratio-multiplied \
                     counter collides for related inputs; derive child streams via \
                     `SeededRng::fork` (full splitmix64 finalization over both words)",
                );
            }
        }
    }
}

/// `X.wrapping_mul(0x9E37…)` whose receiver or result is xor/add-combined.
fn wrapping_mul_mix(file: &SourceFile, const_idx: usize) -> bool {
    // Expect `. wrapping_mul ( CONST )`.
    if const_idx < 3
        || !file.is_punct(const_idx - 1, "(")
        || !file.is_ident(const_idx - 2, "wrapping_mul")
        || !file.is_punct(const_idx - 3, ".")
    {
        return false;
    }
    if !file.is_punct(const_idx + 1, ")") {
        return false;
    }
    let receiver_start = receiver_start(file, const_idx - 3);
    // Mixed just before the receiver: `seed ^ counter.wrapping_mul(G)`.
    if receiver_start > 0 {
        let prev = file.tok(receiver_start - 1);
        if prev == "^" || prev == "+" {
            return true;
        }
    }
    // Mixed just after the call: `counter.wrapping_mul(G) ^ seed`.
    if const_idx + 2 < file.tokens.len() {
        let next = file.tok(const_idx + 2);
        if next == "^" || next == "+" {
            return true;
        }
    }
    // Parenthesized pre-mix receiver: `(seed + counter).wrapping_mul(G)`.
    if file.is_punct(const_idx - 4, ")") {
        let open = file.matching_open(const_idx - 4);
        if group_has_mix_operator(file, open, const_idx - 4) {
            return true;
        }
    }
    false
}

/// `CONST * x` / `x * CONST` with a `^`/`+` mix in the same statement.
fn bare_mul_mix(file: &SourceFile, const_idx: usize) -> bool {
    let left_mul = const_idx > 0 && file.is_punct(const_idx - 1, "*");
    let right_mul = file.is_punct(const_idx + 1, "*");
    if !left_mul && !right_mul {
        return false;
    }
    // `(seed + counter) * G` — the paren group right of/left of the `*`.
    if left_mul && const_idx >= 2 && file.is_punct(const_idx - 2, ")") {
        let open = file.matching_open(const_idx - 2);
        if group_has_mix_operator(file, open, const_idx - 2) {
            return true;
        }
    }
    // `seed ^ counter * G` (either side) — any `^`/`+` in the statement
    // outside bracket groups.
    let start = file.statement_start(const_idx);
    let end = file.statement_end(const_idx);
    let mut depth = 0i32;
    for j in start..end {
        match file.tok(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "^" if depth <= 0 => return true,
            "+" if depth <= 0 => return true,
            _ => {}
        }
    }
    false
}

/// Walks back over a postfix chain (`a.b(c).d`) to its first token.
fn receiver_start(file: &SourceFile, dot_idx: usize) -> usize {
    let mut j = dot_idx;
    while j > 0 {
        let prev = file.tok(j - 1);
        match prev {
            ")" | "]" => j = file.matching_open(j - 1),
            "." | "::" => j -= 1,
            _ if file.tokens[j - 1].kind == TokenKind::Ident
                || file.tokens[j - 1].kind == TokenKind::Number =>
            {
                j -= 1
            }
            _ => break,
        }
    }
    j
}

/// Whether the bracket group `(open … close)` contains a top-level
/// `^`/`+` (depth 1 relative to the group).
fn group_has_mix_operator(file: &SourceFile, open: usize, close: usize) -> bool {
    let mut depth = 0i32;
    for j in open..=close {
        match file.tok(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "^" | "+" if depth == 1 => return true,
            _ => {}
        }
    }
    false
}
