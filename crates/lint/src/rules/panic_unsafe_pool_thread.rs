//! `panic-unsafe-pool-thread` — pool threads whose loop can die silently.
//!
//! PR 8's handler-pool bug: `cn-net`'s frontend spawned a fixed pool of
//! handler threads, each running `loop { handle(conn) }`. A panic in
//! one handler killed that thread; the pool shrank permanently and the
//! frontend quietly lost capacity until it served nothing. The fix
//! wraps each iteration's work in `std::panic::catch_unwind` and counts
//! the panic instead of dying.
//!
//! This rule finds long-lived pool threads — `thread::Builder::spawn`
//! (or `thread::spawn`) whose closure contains an unconditional
//! `loop { … }` — with no `catch_unwind` anywhere in the closure or in
//! same-file functions it calls (one level deep). `while`/`for` loops
//! don't fire: a bounded loop dying with its thread is ordinary
//! fan-out/join, not a silently shrinking pool.
//!
//! Heuristic, so severity is `Warning`: a spawn whose panic *is*
//! propagated (e.g. the spawner joins and checks) earns a suppression
//! saying who observes the death.

use crate::engine::{Rule, Severity, Sink};
use crate::source::SourceFile;
use crate::syntax::{visit_block, Block, Expr, FileSyntax, LoopKind};

/// Flags pool threads running `loop { … }` without `catch_unwind`.
pub struct PanicUnsafePoolThread;

impl Rule for PanicUnsafePoolThread {
    fn id(&self) -> &'static str {
        "panic-unsafe-pool-thread"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn summary(&self) -> &'static str {
        "pool thread loops forever without catch_unwind; one panic silently shrinks the pool"
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        let syntax = file.syntax();
        for f in &syntax.fns {
            let Some(body) = &f.body else { continue };
            visit_block(body, &mut |e| {
                if let Some((name_tok, worker)) = spawn_site(e) {
                    if loops_without_catch_unwind(syntax, worker) {
                        sink.report(
                            name_tok,
                            "pool thread runs `loop { … }` with no catch_unwind: one \
                             panicking iteration kills the thread and silently shrinks \
                             the pool (the cn-net handler-pool bug); wrap the loop body \
                             in std::panic::catch_unwind and count the panic, or \
                             suppress stating who observes the thread's death",
                        );
                    }
                }
            });
        }
    }
}

/// If `e` is a pool-thread spawn, returns the token to report at and
/// the expression that runs on the new thread.
fn spawn_site(e: &Expr) -> Option<(usize, &Expr)> {
    match e {
        // thread::Builder::new().name(...).spawn(closure)
        Expr::Method {
            recv,
            name,
            name_tok,
            args,
        } if name == "spawn" && chain_mentions_builder(recv) => {
            args.first().map(|w| (*name_tok, w))
        }
        // thread::spawn(closure) / std::thread::spawn(closure)
        Expr::Call { callee, args } => match callee.as_ref() {
            Expr::Path { segs, last_tok, .. }
                if segs.last().map(String::as_str) == Some("spawn")
                    && segs.iter().any(|s| s == "thread") =>
            {
                args.first().map(|w| (*last_tok, w))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Whether a method-chain receiver goes back to `thread::Builder`.
fn chain_mentions_builder(recv: &Expr) -> bool {
    let mut found = false;
    crate::syntax::visit(recv, &mut |x| {
        if let Expr::Path { segs, .. } = x {
            if segs.iter().any(|s| s == "Builder") {
                found = true;
            }
        }
    });
    found
}

/// Whether the spawned worker contains an unconditional `loop` and no
/// `catch_unwind`, looking through same-file callees one level deep.
fn loops_without_catch_unwind(syntax: &FileSyntax, worker: &Expr) -> bool {
    let mut has_loop = false;
    let mut has_catch = false;
    let mut callees: Vec<String> = Vec::new();
    scan(worker, &mut has_loop, &mut has_catch, &mut callees);
    for name in callees {
        if let Some(f) = syntax.fn_named(&name) {
            if let Some(body) = &f.body {
                scan_block(body, &mut has_loop, &mut has_catch, &mut Vec::new());
            }
        }
    }
    has_loop && !has_catch
}

fn scan(e: &Expr, has_loop: &mut bool, has_catch: &mut bool, callees: &mut Vec<String>) {
    crate::syntax::visit(e, &mut |x| match x {
        Expr::Loop {
            kind: LoopKind::Loop,
            ..
        } => *has_loop = true,
        Expr::Method { name, .. } if name == "catch_unwind" => *has_catch = true,
        Expr::Call { callee, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if segs.last().map(String::as_str) == Some("catch_unwind") {
                    *has_catch = true;
                }
                // A plain lowercase call may be the worker body factored
                // into a same-file fn (`|| worker_loop(rx)`).
                if segs.len() == 1 && segs[0].chars().next().is_some_and(|c| c.is_lowercase()) {
                    callees.push(segs[0].clone());
                }
            }
        }
        // `spawn(worker_loop)` passed as a bare fn reference.
        Expr::Path { segs, .. }
            if segs.len() == 1 && segs[0].chars().next().is_some_and(|c| c.is_lowercase()) =>
        {
            callees.push(segs[0].clone());
        }
        _ => {}
    });
}

fn scan_block(b: &Block, has_loop: &mut bool, has_catch: &mut bool, callees: &mut Vec<String>) {
    visit_block(b, &mut |x| {
        scan(x, has_loop, has_catch, callees);
    });
}
