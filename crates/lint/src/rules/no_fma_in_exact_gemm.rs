//! `no-fma-in-exact-gemm` — FMA is banned under `ops/gemm/`.
//!
//! The packed GEMM's bit-exactness contract (PR 5) requires every
//! product to round through an f32 multiply *then* an f32 add, exactly
//! like the seed i-k-j kernel. A fused multiply-add rounds once, so
//! `_mm256_fmadd_ps` or `f32::mul_add` anywhere in the kernel silently
//! changes every test that pins bitwise equality. The opt-in FMA fast
//! path ROADMAP plans must live behind a separate backend flag, not in
//! the exact kernel tree.

use crate::engine::{Rule, Sink};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Flags fused-multiply-add intrinsics and `mul_add` calls in the exact
/// GEMM tree.
pub struct NoFmaInExactGemm;

impl Rule for NoFmaInExactGemm {
    fn id(&self) -> &'static str {
        "no-fma-in-exact-gemm"
    }

    fn summary(&self) -> &'static str {
        "FMA in the exact GEMM tree breaks the bit-exactness contract (single rounding != mul-then-add)"
    }

    fn applies_to(&self, path: &str) -> bool {
        path.contains("ops/gemm/")
    }

    // The contract binds tests too: a reference computed with mul_add
    // would assert the wrong bits.
    fn skip_test_code(&self) -> bool {
        false
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        for i in 0..file.tokens.len() {
            if file.tokens[i].kind != TokenKind::Ident {
                continue;
            }
            let text = file.tok(i);
            let fma_intrinsic = text.starts_with("_mm") && text.contains("fmadd");
            let mul_add_call = text == "mul_add" && i > 0 && file.is_punct(i - 1, ".");
            if fma_intrinsic || mul_add_call {
                sink.report(
                    i,
                    "fused multiply-add in the exact GEMM tree: FMA rounds once where the \
                     bit-exactness contract requires mul-then-add rounding; keep the exact \
                     kernel FMA-free (an FMA fast path belongs behind a separate backend flag)",
                );
            }
        }
    }
}
