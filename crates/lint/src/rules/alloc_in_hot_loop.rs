//! `alloc-in-hot-loop` — heap allocation inside a steady-state serving
//! or inference loop.
//!
//! PR 10 made the serving hot path allocation-free end to end: sessions
//! plan their scratch once per deployment shape (`ShapePlan` + arena),
//! workers stage batches and recycle reply buffers, handlers reuse
//! frame-encode scratch — and counting-allocator regression tests pin
//! **zero heap allocations per request** in steady state. An innocent
//! `Vec::new`/`to_vec`/`.clone()` added to one of those loops silently
//! reintroduces a per-request allocation long before the perf harness
//! notices. Inside the named hot functions an allocating call is
//! presumed per-request until justified; warmup/setup allocations are
//! suppressed with that argument.

use crate::engine::{Rule, Sink};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Files holding the planned-scratch hot loops.
const HOT_PATHS: &[&str] = &[
    "crates/serve/src/",
    "crates/net/src/",
    "crates/analog/src/engine/",
    "crates/nn/src/model.rs",
];

/// Functions whose bodies form the per-request steady state: the serve
/// worker loop and its batch step, the planned session entry points, the
/// planned sequential forward, and the connection-handler loop.
const HOT_FNS: &[&str] = &[
    "worker_loop",
    "run_batch",
    "infer_batch",
    "logits_batch",
    "logits_ref",
    "infer_logits_preds",
    "infer_with",
    "handler_loop",
    "handle_connection",
    "flush_ready",
    "fulfill",
];

/// Flags heap-allocating calls inside the zero-alloc hot loops.
pub struct AllocInHotLoop;

impl Rule for AllocInHotLoop {
    fn id(&self) -> &'static str {
        "alloc-in-hot-loop"
    }

    fn summary(&self) -> &'static str {
        "heap allocation in a zero-alloc serving/inference loop; reuse the planned scratch"
    }

    fn applies_to(&self, path: &str) -> bool {
        HOT_PATHS.iter().any(|p| path.contains(p))
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        let mut i = 0;
        while i < file.tokens.len() {
            if !file.is_ident(i, "fn")
                || i + 1 >= file.tokens.len()
                || file.tokens[i + 1].kind != TokenKind::Ident
                || !HOT_FNS.contains(&file.tok(i + 1))
            {
                i += 1;
                continue;
            }
            // Find the body: the first `{` after the signature (brace-free
            // in this workspace's signatures).
            let mut j = i + 2;
            while j < file.tokens.len() && file.tok(j) != "{" {
                j += 1;
            }
            if j >= file.tokens.len() {
                return;
            }
            let mut depth = 1usize;
            j += 1;
            while j < file.tokens.len() && depth > 0 {
                match file.tok(j) {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    _ => check_alloc_at(file, j, sink),
                }
                j += 1;
            }
            i = j;
        }
    }
}

/// Reports token `j` if it is the head of a heap-allocating call:
/// `vec![…]`, `Vec::new(…)`, `Vec::with_capacity(…)`, `.to_vec()` or
/// `.clone()`.
fn check_alloc_at(file: &SourceFile, j: usize, sink: &mut Sink<'_>) {
    if file.tokens[j].kind != TokenKind::Ident {
        return;
    }
    let next = |k: usize| {
        if j + k < file.tokens.len() {
            file.tok(j + k)
        } else {
            ""
        }
    };
    let prev = if j > 0 { file.tok(j - 1) } else { "" };
    let hit = match file.tok(j) {
        "vec" => next(1) == "!",
        "Vec" => next(1) == "::" && matches!(next(2), "new" | "with_capacity"),
        "to_vec" => prev == "." && next(1) == "(",
        "clone" => prev == "." && next(1) == "(",
        _ => false,
    };
    if hit {
        sink.report(
            j,
            "heap allocation in a zero-alloc hot loop: this path is covered by the \
             counting-allocator regression tests (zero allocations per request in steady \
             state); reuse the planned scratch (arena, staging buffers, pooled replies), \
             or suppress with an argument for why this allocation is warmup/once-per-\
             deployment rather than per-request",
        );
    }
}
