//! `kernel-zero-skip` — `== 0.0`/`!= 0.0` guards in tensor kernels.
//!
//! PR 4 removed the `aik == 0.0` skip from matmul: skipping "zero" work
//! silently masked NaN/±inf in the other operand (`0.0 × NaN` must stay
//! NaN). Kernels under `crates/tensor/src/ops/` may not compare floats
//! against literal zero to elide work; callers that genuinely need a
//! zero test (and have thought about non-finite inputs) suppress with a
//! reason.

use crate::engine::{Rule, Sink};
use crate::lexer::TokenKind;
use crate::rules::is_float_zero;
use crate::source::SourceFile;

/// Flags float-zero equality guards inside the tensor kernel tree.
pub struct KernelZeroSkip;

impl Rule for KernelZeroSkip {
    fn id(&self) -> &'static str {
        "kernel-zero-skip"
    }

    fn summary(&self) -> &'static str {
        "float == 0.0 guard in a tensor kernel masks NaN/inf propagation (0.0 * NaN must stay NaN)"
    }

    fn applies_to(&self, path: &str) -> bool {
        path.contains("crates/tensor/src/ops/")
    }

    fn check(&self, file: &SourceFile, sink: &mut Sink<'_>) {
        for i in 0..file.tokens.len() {
            if !(file.is_punct(i, "==") || file.is_punct(i, "!=")) {
                continue;
            }
            let zero_neighbor = [i.wrapping_sub(1), i + 1].into_iter().any(|j| {
                j < file.tokens.len()
                    && file.tokens[j].kind == TokenKind::Number
                    && is_float_zero(file.tok(j))
            });
            if zero_neighbor {
                sink.report(
                    i,
                    "floating-point zero-skip in a kernel: eliding work on `== 0.0` masks \
                     NaN/±inf propagation (0.0 × NaN must stay NaN); remove the guard or \
                     suppress with a justification covering non-finite inputs",
                );
            }
        }
    }
}
