//! # cn-lint
//!
//! An in-tree, dependency-free static analyzer that machine-checks the
//! contracts this workspace's correctness rests on but the compiler
//! cannot see: decorrelated-but-deterministic RNG derivation, NaN-
//! propagating kernels, the deliberately-FMA-free bit-exact GEMM, and
//! bounded concurrency. Each rule encodes a bug class a past PR fixed
//! by hand; the linter keeps them fixed as the workspace grows.
//!
//! The analyzer is layered:
//!
//! - [`lexer`] — a small token-level lexer for Rust source (strings,
//!   raw strings, char literals, nested block comments, doc comments,
//!   line/column tracking),
//! - [`syntax`] — a dependency-free recursive-descent parser over the
//!   token stream: functions, blocks, `let` bindings, call expressions
//!   and method chains (everything else degrades to opaque nodes),
//! - [`dataflow`] — conservative intra-function taint tracking from
//!   untrusted decode sources through bindings and arithmetic into
//!   allocation/indexing sinks, cleared by recognized guards,
//! - [`engine`] + [`source`] — per-rule visitors over a parsed
//!   [`source::SourceFile`] (with `#[cfg(test)]` span detection), inline
//!   suppression via `// cn-lint: allow(rule-name, reason = "…")`,
//!   severity levels, and human / JSON / SARIF diagnostics with stable
//!   rule IDs,
//! - [`rules`] — the catalog itself.
//!
//! Run it over the workspace with `cargo run -p cn-lint`; a clean tree
//! exits 0.
//!
//! # Example
//!
//! ```
//! use cn_lint::source::SourceFile;
//! use cn_lint::{engine, rules};
//!
//! let file = SourceFile::parse(
//!     "crates/tensor/src/ops/fake.rs",
//!     "fn f(x: f32) -> bool { x == 0.0 }",
//! );
//! let diags = engine::run(&[file], &rules::catalog());
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "kernel-zero-skip");
//! ```

#![warn(missing_docs)]

pub mod dataflow;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod syntax;
pub mod workspace;

pub use engine::{Diagnostic, Rule, Severity};
pub use source::SourceFile;
