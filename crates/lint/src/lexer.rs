//! A small, self-contained lexer for Rust source files.
//!
//! The rules in this crate are token-level: they never need a full parse
//! tree, but they must never be fooled by operators inside string
//! literals, seed constants inside comments, or braces inside `char`
//! literals. The lexer therefore handles exactly the lexical structure
//! that matters for that guarantee — ordinary and raw (byte) strings,
//! char literals vs. lifetimes, nested block comments, doc comments and
//! numeric literals — and tracks a line/column position for every token
//! so diagnostics point at real source locations.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `wrapping_mul`, `r#async`).
    Ident,
    /// An integer or float literal, including any type suffix.
    Number,
    /// A string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"` and raw-byte
    /// combinations.
    Str,
    /// A character or byte literal: `'x'`, `'\n'`, `b'0'`.
    Char,
    /// A lifetime: `'a`, `'static`.
    Lifetime,
    /// Punctuation, greedily grouped into multi-character operators
    /// (`==`, `::`, `->`, `..=` …).
    Punct,
}

/// One code token with its byte span and 1-based line/column position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
    /// 1-based column (in characters) of `start`.
    pub col: u32,
}

/// One comment (comments are kept out of the code-token stream so rules
/// never match inside them, but suppression parsing still sees them).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Byte offset of the `//` or `/*`.
    pub start: usize,
    /// Byte offset one past the end of the comment.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
    /// Whether this is a block comment (`/* … */`, possibly nested).
    pub block: bool,
}

/// Lexer output: the code tokens and the comments of one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so lexing is greedy.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Rust's strict and reserved-in-expressions keywords. The lexer itself
/// classifies keywords as [`TokenKind::Ident`] (rules match on text),
/// but the syntax layer must distinguish `match`-the-keyword from
/// `match`-the-method-name, and pattern parsing must not capture `mut`
/// or `ref` as a binding.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while",
];

/// Whether `text` is a Rust keyword (raw identifiers like `r#match` are
/// not: the `r#` prefix is part of the token text and defeats the match,
/// which is exactly the language's own rule).
pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// Tokenizes `src`, returning code tokens and comments separately.
///
/// The lexer is lossless about positions but deliberately permissive: an
/// unterminated literal is consumed to end-of-file rather than reported,
/// since the compiler will reject such a file long before the linter
/// matters.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one char, maintaining the line/column counters.
    fn bump(&mut self) {
        let b = self.bytes[self.pos];
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count characters, not continuation bytes.
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn start_token(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn push_token(&mut self, kind: TokenKind, start: (usize, u32, u32)) {
        self.out.tokens.push(Token {
            kind,
            start: start.0,
            end: self.pos,
            line: start.1,
            col: start.2,
        });
    }

    fn line_comment(&mut self) {
        let start = self.start_token();
        // `///` (but not `////`) and `//!` are doc comments.
        let doc = (self.peek(2) == b'/' && self.peek(3) != b'/') || self.peek(2) == b'!';
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        self.out.comments.push(Comment {
            start: start.0,
            end: self.pos,
            line: start.1,
            col: start.2,
            doc,
            block: false,
        });
    }

    fn block_comment(&mut self) {
        let start = self.start_token();
        // `/**` (but not `/***` or the degenerate `/**/`) and `/*!`.
        let doc = self.peek(2) == b'!'
            || (self.peek(2) == b'*' && self.peek(3) != b'*' && self.peek(3) != b'/');
        self.bump_n(2);
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            start: start.0,
            end: self.pos,
            line: start.1,
            col: start.2,
            doc,
            block: true,
        });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` and raw
    /// identifiers (`r#match`). Returns `false` when the `r`/`b` starts a
    /// plain identifier, leaving the position untouched.
    fn raw_or_byte_literal(&mut self) -> bool {
        let mut prefix = 1usize; // past the leading r or b
        if self.peek(0) == b'b' && self.peek(1) == b'r' {
            prefix = 2;
        }
        let mut hashes = 0usize;
        while self.peek(prefix + hashes) == b'#' {
            hashes += 1;
        }
        let after = self.peek(prefix + hashes);
        let raw = self.peek(0) == b'r' || prefix == 2;
        if raw && after == b'"' {
            let start = self.start_token();
            self.bump_n(prefix + hashes + 1);
            self.raw_string_body(hashes);
            self.push_token(TokenKind::Str, start);
            return true;
        }
        if raw && hashes > 0 && (after == b'_' || after.is_ascii_alphabetic()) {
            // Raw identifier `r#ident`.
            let start = self.start_token();
            self.bump_n(prefix + hashes);
            self.ident_body();
            self.push_token(TokenKind::Ident, start);
            return true;
        }
        if self.peek(0) == b'b' && hashes == 0 {
            if self.peek(1) == b'"' {
                let start = self.start_token();
                self.bump(); // b
                self.string_from_quote(start);
                return true;
            }
            if self.peek(1) == b'\'' {
                let start = self.start_token();
                self.bump(); // b
                self.char_literal(start);
                return true;
            }
        }
        false
    }

    fn raw_string_body(&mut self, hashes: usize) {
        while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(1 + matched) == b'#' {
                    matched += 1;
                }
                if matched == hashes {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    fn string(&mut self) {
        let start = self.start_token();
        self.string_from_quote(start);
    }

    fn string_from_quote(&mut self, start: (usize, u32, u32)) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2.min(self.bytes.len() - self.pos)),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push_token(TokenKind::Str, start);
    }

    fn char_or_lifetime(&mut self) {
        let start = self.start_token();
        let next = self.peek(1);
        if next == b'\\' {
            self.char_literal(start);
            return;
        }
        if next == b'_' || next.is_ascii_alphabetic() {
            // `'a` is a lifetime unless a closing quote follows the
            // identifier (`'x'` is a char).
            let mut len = 1usize;
            while {
                let b = self.peek(1 + len);
                b == b'_' || b.is_ascii_alphanumeric()
            } {
                len += 1;
            }
            if self.peek(1 + len) == b'\'' {
                self.char_literal(start);
            } else {
                self.bump_n(1 + len);
                self.push_token(TokenKind::Lifetime, start);
            }
            return;
        }
        self.char_literal(start);
    }

    fn char_literal(&mut self, start: (usize, u32, u32)) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2.min(self.bytes.len() - self.pos)),
                b'\'' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push_token(TokenKind::Char, start);
    }

    fn number(&mut self) {
        let start = self.start_token();
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'X' | b'o' | b'O' | b'b' | b'B') {
            self.bump_n(2);
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
            self.push_token(TokenKind::Number, start);
            return;
        }
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.bump();
        }
        // A fractional part only when a digit follows the dot, so `0..n`
        // and `1.max(x)` lex as integer + punct/ident.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        } else if self.peek(0) == b'.'
            && !self.peek(1).is_ascii_alphabetic()
            && self.peek(1) != b'.'
            && self.peek(1) != b'_'
        {
            // Trailing-dot float `1.` (not a range, not a method call).
            self.bump();
        }
        // Exponent.
        if matches!(self.peek(0), b'e' | b'E') {
            let sign = matches!(self.peek(1), b'+' | b'-') as usize;
            if self.peek(1 + sign).is_ascii_digit() {
                self.bump_n(1 + sign);
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
        }
        // Type suffix (`f32`, `u64`, `usize` …).
        while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
            self.bump();
        }
        self.push_token(TokenKind::Number, start);
    }

    fn ident(&mut self) {
        let start = self.start_token();
        self.ident_body();
        self.push_token(TokenKind::Ident, start);
    }

    fn ident_body(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn punct(&mut self) {
        let start = self.start_token();
        let rest = &self.src[self.pos..];
        for op in OPERATORS {
            if rest.starts_with(op) {
                self.bump_n(op.len());
                self.push_token(TokenKind::Punct, start);
                return;
            }
        }
        self.bump();
        self.push_token(TokenKind::Punct, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        let lexed = lex(src);
        lexed
            .tokens
            .iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    #[test]
    fn operators_lex_greedily() {
        let toks = kinds("a == b != 0.0 .. c ..= d :: e");
        let texts: Vec<&str> = toks.iter().map(|(_, s)| *s).collect();
        assert_eq!(
            texts,
            ["a", "==", "b", "!=", "0.0", "..", "c", "..=", "d", "::", "e"]
        );
    }

    #[test]
    fn strings_hide_operators() {
        let toks = kinds(r#"let s = "a == b /* not a comment */";"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(!toks.iter().any(|(_, s)| *s == "=="));
        assert!(lex(r#"let s = "a /* x */";"#).comments.is_empty());
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"quote " inside"#; let t = 1;"##;
        let toks = kinds(src);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(strs, [r##"r#"quote " inside"#"##]);
        assert!(toks.iter().any(|(_, s)| *s == "t"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r###"let a = b"bytes"; let b = br#"raw"#; let c = b'x';"###);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            1
        );
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && *s == "r#match"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("before /* outer /* inner */ still outer */ after");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens.len(), 2);
        assert!(lexed.comments[0].block);
    }

    #[test]
    fn doc_comment_classification() {
        let lexed = lex(
            "/// doc\n//! inner doc\n// plain\n//// not doc\n/** block doc */\n/* plain block */",
        );
        let docs: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, [true, true, false, false, true, false]);
    }

    #[test]
    fn numbers_with_underscores_and_suffixes() {
        let toks = kinds("0x9E37_79B9_7F4A_7C15 1_000u64 0.5f32 1e-3 2.5E+4 7usize 1.");
        assert!(toks.iter().all(|(k, _)| *k == TokenKind::Number));
        assert_eq!(toks.len(), 7);
    }

    #[test]
    fn range_does_not_eat_the_dots() {
        let toks = kinds("for i in 0..n {}");
        let texts: Vec<&str> = toks.iter().map(|(_, s)| *s).collect();
        assert_eq!(texts, ["for", "i", "in", "0", "..", "n", "{", "}"]);
    }

    #[test]
    fn method_call_on_int_literal() {
        let toks = kinds("1.max(2)");
        let texts: Vec<&str> = toks.iter().map(|(_, s)| *s).collect();
        assert_eq!(texts, ["1", ".", "max", "(", "2", ")"]);
    }

    #[test]
    fn keyword_classification() {
        for kw in ["fn", "match", "loop", "Self", "mut"] {
            assert!(is_keyword(kw), "{kw}");
        }
        for not in ["spawn", "matches", "r#match", "loop_count", ""] {
            assert!(!is_keyword(not), "{not}");
        }
    }

    #[test]
    fn line_and_column_tracking() {
        let lexed = lex("ab\n  cd = 1\n");
        let t = &lexed.tokens[1];
        assert_eq!((t.line, t.col), (2, 3));
        let eq = &lexed.tokens[2];
        assert_eq!((eq.line, eq.col), (2, 6));
    }

    #[test]
    fn multibyte_chars_count_as_one_column() {
        let src = "let σ = 1;\nlet x = 2;";
        let lexed = lex(src);
        // `σ` is 2 bytes but 1 column; `=` after it sits at column 7.
        let eq = lexed
            .tokens
            .iter()
            .find(|t| &src[t.start..t.end] == "=")
            .unwrap();
        assert_eq!((eq.line, eq.col), (1, 7));
        let x = lexed
            .tokens
            .iter()
            .find(|t| &src[t.start..t.end] == "x")
            .unwrap();
        assert_eq!((x.line, x.col), (2, 5));
    }
}
