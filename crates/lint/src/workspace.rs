//! Workspace discovery: which `.rs` files get linted.

use crate::engine::{self, Diagnostic, Rule};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Path fragments excluded from linting: the rule fixtures fire on
/// purpose.
const SKIP_PATHS: &[&str] = &["crates/lint/tests/fixtures/"];

/// Collects every lintable `.rs` file under `root`, as paths relative to
/// it, sorted for deterministic output.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal.
pub fn discover(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let rel_str = rel_path_str(&rel);
            if SKIP_PATHS.iter().any(|skip| rel_str.contains(skip)) {
                continue;
            }
            out.push(rel);
        }
    }
    Ok(())
}

/// A relative path as a `/`-separated string (rule filters match on
/// this, independent of the host OS).
pub fn rel_path_str(path: &Path) -> String {
    path.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints the workspace rooted at `root` with `rules`: discovers files,
/// parses each, runs the engine.
///
/// # Errors
///
/// Propagates I/O errors from traversal or reading a source file.
pub fn lint_workspace(root: &Path, rules: &[Box<dyn Rule>]) -> std::io::Result<Vec<Diagnostic>> {
    let files = discover(root)?;
    lint_files(root, &files, rules)
}

/// Lints an explicit set of workspace-relative files (the `--changed`
/// path). Files that no longer exist or fall under the skip lists are
/// silently ignored, so a rename or fixture edit doesn't fail the run.
///
/// # Errors
///
/// Propagates I/O errors from reading a source file.
pub fn lint_files(
    root: &Path,
    rels: &[PathBuf],
    rules: &[Box<dyn Rule>],
) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for rel in rels {
        let rel_str = rel_path_str(rel);
        if !rel_str.ends_with(".rs") || SKIP_PATHS.iter().any(|skip| rel_str.contains(skip)) {
            continue;
        }
        let path = root.join(rel);
        if !path.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(path)?;
        files.push(SourceFile::parse(rel_str, text));
    }
    Ok(engine::run(&files, rules))
}

/// Workspace-relative paths of files changed since `gitref`, per
/// `git diff --name-only` (deleted files excluded). This compares the
/// working tree against `gitref` directly, so staged and unstaged edits
/// are both included.
///
/// # Errors
///
/// Fails if `git` cannot be spawned or exits non-zero (unknown ref,
/// not a repository).
pub fn changed_files(root: &Path, gitref: &str) -> std::io::Result<Vec<PathBuf>> {
    let output = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", "--diff-filter=d", gitref, "--"])
        .output()?;
    if !output.status.success() {
        return Err(std::io::Error::other(format!(
            "git diff --name-only {gitref} failed: {}",
            String::from_utf8_lossy(&output.stderr).trim()
        )));
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    Ok(stdout
        .lines()
        .filter(|l| !l.is_empty())
        .map(PathBuf::from)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_tree_is_excluded() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).unwrap();
        assert!(!files.is_empty());
        let strs: Vec<String> = files.iter().map(|p| rel_path_str(p)).collect();
        assert!(strs
            .iter()
            .all(|p| !p.contains("crates/lint/tests/fixtures/")));
        assert!(strs.iter().all(|p| !p.starts_with("target/")));
        assert!(strs.iter().any(|p| p == "crates/tensor/src/rng.rs"));
    }
}
