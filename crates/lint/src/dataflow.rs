//! The dataflow-lite layer: conservative intra-function taint tracking
//! over the [`crate::syntax`] tree.
//!
//! The model mechanizes the PR 8 review post-mortems:
//!
//! - **Sources.** A value decoded from untrusted bytes is *tainted*:
//!   `u32::from_le_bytes(...)`, `Buf`-style `get_u32_le()` reads,
//!   cursor reads named after their width (`c.u32("rows")`). A JSON
//!   number (`as_f64()`/`as_u64()`) is *float-tainted*; it becomes a
//!   tainted length the moment it is cast to an integer type (pure
//!   float statistics never trip the length rules).
//! - **Propagation.** Taint flows through `let` bindings, assignments,
//!   arithmetic, casts, `.max()`, method chains, tuple/array
//!   construction and container pushes. `.len()` of a materialized
//!   container is *clean* — the bytes were already paid for.
//! - **Clearing.** `checked_*`/`saturating_*`/`min`/`clamp` return
//!   clean values. A comparison guard whose block diverges (early
//!   `return`/`break`/panic) clears every variable mentioned in the
//!   comparison *and, transitively, the variables it was derived
//!   from* — so `if need != c.remaining() { return Err(...) }` clears
//!   `rows` and `count` when `need` was computed from them. Equality
//!   against a bare literal (`rows == 0`) clears nothing: it excludes
//!   one value, it does not bound the other 2^64.
//! - **Sinks.** `Vec::with_capacity(n)` / `vec![x; n]` /
//!   `reserve(n)` / `resize(n, …)` with a tainted `n`, slice indexing
//!   with a tainted index, and raw `*`/`+`/`<<` arithmetic on tainted
//!   operands each emit an event the rules turn into diagnostics.
//!
//! Everything is intra-function and flow-insensitive across branches
//! (both arms of an `if` are walked in order against one environment).
//! The bias is deliberate: unknown calls do *not* propagate taint and
//! opaque expressions are clean, so the analysis under-approximates —
//! a finding is worth reading, and the fixture suite plus the
//! self-host run keep the false-positive rate at zero on this
//! workspace.

use crate::source::SourceFile;
use crate::syntax::{Arm, Block, Expr, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// What kind of sink an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A tainted length reached an allocation sink
    /// (`with_capacity` / `vec![x; n]` / `reserve` / `resize`).
    Alloc,
    /// A tainted index reached a slice/array indexing site.
    Index,
    /// Raw `*`, `+` or `<<` (or their compound-assign forms) on a
    /// tainted operand.
    Arith,
}

/// One sink hit, anchored at a token.
#[derive(Debug, Clone)]
pub struct Event {
    /// Which sink fired.
    pub kind: EventKind,
    /// Token index to anchor the diagnostic at.
    pub tok: usize,
    /// Short description of the sink (`Vec::with_capacity`, `*`, …).
    pub what: String,
}

/// Runs the taint analysis over every function in `file`, returning
/// all sink events in source order.
pub fn analyze(file: &SourceFile) -> Vec<Event> {
    let syntax = file.syntax();
    let mut events = Vec::new();
    for f in &syntax.fns {
        if let Some(body) = &f.body {
            let mut ctx = Ctx {
                vars: BTreeMap::new(),
                events: &mut events,
            };
            ctx.walk_block(body);
        }
    }
    events.sort_by_key(|e| e.tok);
    events
}

/// What the analysis knows about one evaluated expression.
#[derive(Debug, Default, Clone)]
struct Eval {
    /// Carries a length decoded from untrusted input.
    tainted: bool,
    /// Carries an untrusted JSON/float number (taints on int cast).
    float: bool,
    /// Local variables this value was computed from (guard clearing
    /// follows these edges backwards).
    mentions: BTreeSet<String>,
}

impl Eval {
    fn clean() -> Eval {
        Eval::default()
    }

    fn join(mut self, other: Eval) -> Eval {
        self.tainted |= other.tainted;
        self.float |= other.float;
        self.mentions.extend(other.mentions);
        self
    }
}

/// Per-variable state.
#[derive(Debug, Default, Clone)]
struct VarState {
    tainted: bool,
    float: bool,
    /// Variables the current value was derived from (recorded even for
    /// clean values: `checked_mul` launders taint but a guard on its
    /// result still vouches for the inputs).
    origins: BTreeSet<String>,
}

struct Ctx<'a> {
    vars: BTreeMap<String, VarState>,
    events: &'a mut Vec<Event>,
}

/// Method names that read integers out of an untrusted byte stream.
fn is_byte_read(name: &str) -> bool {
    // `bytes`-shim reads: get_u8 / get_u32_le / get_f32_le / …
    if let Some(rest) = name.strip_prefix("get_") {
        let rest = rest
            .strip_suffix("_le")
            .or_else(|| rest.strip_suffix("_be"))
            .unwrap_or(rest);
        let mut chars = rest.chars();
        return matches!(chars.next(), Some('u' | 'i' | 'f'))
            && chars.as_str().parse::<u32>().is_ok();
    }
    // Width-named cursor reads: `c.u32("rows")`, `c.u64("len")`.
    matches!(name, "u8" | "u16" | "u32" | "u64" | "u128" | "usize")
}

/// Associated functions that decode integers from raw bytes.
fn is_bytes_decode(name: &str) -> bool {
    matches!(name, "from_le_bytes" | "from_be_bytes" | "from_ne_bytes")
}

/// Methods whose result is a bounded/clean value.
fn is_clearing_method(name: &str) -> bool {
    name.starts_with("checked_")
        || name.starts_with("saturating_")
        || name.starts_with("wrapping_")
        || name.starts_with("overflowing_")
        || matches!(name, "min" | "clamp" | "rem_euclid")
}

/// Methods that measure something already materialized (paying for the
/// bytes happened earlier, so the result is a trusted length).
fn is_measure_method(name: &str) -> bool {
    matches!(
        name,
        "len" | "capacity" | "remaining" | "count" | "is_empty"
    )
}

/// Integer types whose cast target turns a float-tainted JSON number
/// into a tainted length.
fn is_int_type(ty: &str) -> bool {
    matches!(
        ty,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

impl<'a> Ctx<'a> {
    fn walk_block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let { binds, init } => {
                    let ev = match init {
                        Some(e) => self.eval(e),
                        None => Eval::clean(),
                    };
                    for name in binds {
                        self.vars.insert(
                            name.clone(),
                            VarState {
                                tainted: ev.tainted,
                                float: ev.float,
                                origins: ev.mentions.clone(),
                            },
                        );
                    }
                }
                Stmt::Expr(e) => {
                    let _ = self.eval(e);
                }
            }
        }
    }

    /// Evaluates an expression: emits sink events found inside it and
    /// returns its taint summary.
    fn eval(&mut self, e: &Expr) -> Eval {
        match e {
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    let name = &segs[0];
                    let mut ev = Eval::clean();
                    ev.mentions.insert(name.clone());
                    if let Some(v) = self.vars.get(name) {
                        ev.tainted = v.tainted;
                        ev.float = v.float;
                    }
                    ev
                } else {
                    Eval::clean()
                }
            }
            Expr::Lit { .. } | Expr::Opaque { .. } => Eval::clean(),
            Expr::Tuple { items }
            | Expr::Array { items, .. }
            | Expr::StructLit { fields: items } => items
                .iter()
                .map(|x| self.eval(x))
                .fold(Eval::clean(), Eval::join),
            Expr::Call { callee, args } => self.eval_call(callee, args),
            Expr::Method {
                recv,
                name,
                name_tok,
                args,
            } => self.eval_method(recv, name, *name_tok, args),
            Expr::Field { recv, name } => {
                // `self.at`-style fields are tracked as flat keys.
                if let Some(key) = field_key(recv, name) {
                    let mut ev = Eval::clean();
                    ev.mentions.insert(key.clone());
                    if let Some(v) = self.vars.get(&key) {
                        ev.tainted = v.tainted;
                        ev.float = v.float;
                    }
                    ev
                } else {
                    self.eval(recv)
                }
            }
            Expr::Index { recv, index, tok } => {
                let r = self.eval(recv);
                let idx = self.eval(index);
                if idx.tainted {
                    self.events.push(Event {
                        kind: EventKind::Index,
                        tok: *tok,
                        what: "slice index".to_string(),
                    });
                }
                // An element of a tainted container is tainted.
                r.join(idx)
            }
            Expr::MacroCall {
                name,
                name_tok,
                args,
                repeat,
            } => self.eval_macro(name, *name_tok, args, *repeat),
            Expr::Binary {
                op,
                op_tok,
                lhs,
                rhs,
            } => self.eval_binary(op, *op_tok, lhs, rhs),
            Expr::Unary { expr } | Expr::Ref { expr } | Expr::Try { expr } => self.eval(expr),
            Expr::Cast { expr, ty } => {
                let inner = self.eval(expr);
                let mut ev = inner.clone();
                if is_int_type(ty) {
                    ev.tainted = inner.tainted || inner.float;
                    ev.float = false;
                }
                ev
            }
            Expr::Closure { params, body } => {
                // Params shadow; evaluate the body for sinks on captured
                // variables, then restore the shadowed states.
                let saved: Vec<(String, Option<VarState>)> = params
                    .iter()
                    .map(|p| (p.clone(), self.vars.remove(p)))
                    .collect();
                let ev = self.eval(body);
                for (name, state) in saved {
                    match state {
                        Some(s) => {
                            self.vars.insert(name, s);
                        }
                        None => {
                            self.vars.remove(&name);
                        }
                    }
                }
                ev
            }
            Expr::If { cond, then, els } => {
                let cond_ev = self.eval(cond);
                if let Expr::LetCond { binds, expr } = cond.as_ref() {
                    let scrut = self.eval(expr);
                    self.bind_all(binds, &scrut);
                }
                self.walk_block(then);
                let mut out = Eval::clean();
                if let Some(e) = els {
                    out = self.eval(e);
                }
                // Apply guard clearing to the code *after* the if.
                if block_diverges(then) {
                    self.clear_guarded(cond);
                }
                out.mentions.extend(cond_ev.mentions);
                out
            }
            Expr::LetCond { binds, expr } => {
                let scrut = self.eval(expr);
                self.bind_all(binds, &scrut);
                Eval::clean()
            }
            Expr::Match { head, arms } => {
                let h = self.eval(head);
                let mut out = Eval::clean();
                for Arm { binds, body } in arms {
                    self.bind_all(binds, &h);
                    out = out.join(self.eval(body));
                }
                out
            }
            Expr::Loop {
                binds, head, body, ..
            } => {
                if let Some(h) = head {
                    let hv = self.eval(h);
                    if let Expr::LetCond { binds: lb, expr } = h.as_ref() {
                        let scrut = self.eval(expr);
                        self.bind_all(lb, &scrut);
                    }
                    // `for` patterns bind elements of the iterated value.
                    self.bind_all(binds, &hv);
                }
                self.walk_block(body);
                Eval::clean()
            }
            Expr::Return { value } | Expr::Jump { value } => {
                if let Some(v) = value {
                    let _ = self.eval(v);
                }
                Eval::clean()
            }
            Expr::Block(b) => {
                self.walk_block(b);
                // The block's value is its trailing expression's; the
                // walk above evaluated it, so re-derive cheaply from the
                // last statement's shape.
                match b.stmts.last() {
                    Some(Stmt::Expr(e)) => self.summarize(e),
                    _ => Eval::clean(),
                }
            }
        }
    }

    /// Taint summary of an already-walked expression, without emitting
    /// events again. Only binding-level lookups matter here.
    fn summarize(&mut self, e: &Expr) -> Eval {
        match e {
            Expr::Path { segs, .. } if segs.len() == 1 => {
                let mut ev = Eval::clean();
                ev.mentions.insert(segs[0].clone());
                if let Some(v) = self.vars.get(&segs[0]) {
                    ev.tainted = v.tainted;
                    ev.float = v.float;
                }
                ev
            }
            _ => Eval::clean(),
        }
    }

    fn bind_all(&mut self, binds: &[String], ev: &Eval) {
        for name in binds {
            self.vars.insert(
                name.clone(),
                VarState {
                    tainted: ev.tainted,
                    float: ev.float,
                    origins: ev.mentions.clone(),
                },
            );
        }
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr]) -> Eval {
        let arg_evs: Vec<Eval> = args.iter().map(|a| self.eval(a)).collect();
        let joined = arg_evs.iter().cloned().fold(Eval::clean(), Eval::join);
        let (last, last_tok) = match callee {
            Expr::Path { segs, last_tok, .. } => {
                (segs.last().map(String::as_str).unwrap_or(""), *last_tok)
            }
            _ => {
                let _ = self.eval(callee);
                ("", 0)
            }
        };
        if is_bytes_decode(last) {
            let mut ev = joined;
            ev.tainted = true;
            return ev;
        }
        if last == "with_capacity" {
            if let Some(first) = arg_evs.first() {
                if first.tainted {
                    self.events.push(Event {
                        kind: EventKind::Alloc,
                        tok: last_tok,
                        what: "with_capacity".to_string(),
                    });
                }
            }
            return Eval {
                tainted: false,
                float: false,
                mentions: joined.mentions,
            };
        }
        // Conversions propagate; unknown free functions do not (the
        // false-positive dial: an unmodelled helper is assumed to
        // validate its inputs).
        if matches!(last, "from" | "try_from" | "usize" | "u64" | "u32") {
            return joined;
        }
        Eval {
            tainted: false,
            float: false,
            mentions: joined.mentions,
        }
    }

    fn eval_method(&mut self, recv: &Expr, name: &str, name_tok: usize, args: &[Expr]) -> Eval {
        let recv_ev = self.eval(recv);
        let arg_evs: Vec<Eval> = args.iter().map(|a| self.eval(a)).collect();
        let args_joined = arg_evs.iter().cloned().fold(Eval::clean(), Eval::join);
        let mut mentions = recv_ev.mentions.clone();
        mentions.extend(args_joined.mentions.clone());

        if is_byte_read(name) {
            return Eval {
                tainted: true,
                float: name.contains('f') && name.starts_with("get_"),
                mentions,
            };
        }
        if matches!(name, "as_f64") {
            return Eval {
                tainted: false,
                float: true,
                mentions,
            };
        }
        if matches!(name, "as_u64" | "as_i64" | "as_usize") {
            return Eval {
                tainted: true,
                float: false,
                mentions,
            };
        }
        if is_clearing_method(name) || is_measure_method(name) {
            return Eval {
                tainted: false,
                float: false,
                mentions,
            };
        }
        if matches!(name, "reserve" | "reserve_exact" | "resize" | "resize_with") {
            if arg_evs.first().map(|a| a.tainted).unwrap_or(false) {
                self.events.push(Event {
                    kind: EventKind::Alloc,
                    tok: name_tok,
                    what: name.to_string(),
                });
            }
            return Eval::clean();
        }
        if matches!(
            name,
            "push" | "insert" | "extend" | "extend_from_slice" | "push_str" | "append"
        ) {
            // Pushing a tainted value taints the container variable.
            if args_joined.tainted {
                if let Some(key) = receiver_key(recv) {
                    let entry = self.vars.entry(key).or_default();
                    entry.tainted = true;
                    entry.origins.extend(args_joined.mentions.clone());
                }
            }
            return Eval::clean();
        }
        // Default: method results inherit receiver and argument taint
        // (`dims.iter().product()`, `.max(1)`, `.ok_or(...)?`).
        Eval {
            tainted: recv_ev.tainted || args_joined.tainted,
            float: recv_ev.float || args_joined.float,
            mentions,
        }
    }

    fn eval_macro(&mut self, name: &str, name_tok: usize, args: &[Expr], repeat: bool) -> Eval {
        let arg_evs: Vec<Eval> = args.iter().map(|a| self.eval(a)).collect();
        let joined = arg_evs.iter().cloned().fold(Eval::clean(), Eval::join);
        if name == "vec" && repeat && arg_evs.len() == 2 && arg_evs[1].tainted {
            self.events.push(Event {
                kind: EventKind::Alloc,
                tok: name_tok,
                what: "vec![_; n]".to_string(),
            });
        }
        if name.starts_with("assert") || name.starts_with("debug_assert") {
            // `assert!(n <= cap)` bounds like a diverging guard.
            for a in args {
                self.clear_guarded(a);
            }
            return Eval::clean();
        }
        joined
    }

    fn eval_binary(&mut self, op: &str, op_tok: usize, lhs: &Expr, rhs: &Expr) -> Eval {
        let l = self.eval(lhs);
        let r = self.eval(rhs);
        // Compound assignment and plain assignment write through.
        if op == "="
            || op.len() == 2 && op.ends_with('=') && !matches!(op, "==" | "!=" | "<=" | ">=")
            || matches!(op, "<<=" | ">>=")
        {
            if matches!(op, "*=" | "+=" | "<<=") && (l.tainted || r.tainted) {
                self.events.push(Event {
                    kind: EventKind::Arith,
                    tok: op_tok,
                    what: op.to_string(),
                });
            }
            let new_taint = if op == "=" {
                r.clone()
            } else {
                l.clone().join(r.clone())
            };
            if let Some(key) = assign_target_key(lhs) {
                self.vars.insert(
                    key,
                    VarState {
                        tainted: new_taint.tainted,
                        float: new_taint.float,
                        origins: new_taint.mentions.clone(),
                    },
                );
            }
            return Eval::clean();
        }
        if matches!(op, "==" | "!=" | "<" | "<=" | ">" | ">=" | "&&" | "||") {
            // Comparisons produce booleans; mentions survive for guard
            // clearing.
            return Eval {
                tainted: false,
                float: false,
                mentions: l.mentions.into_iter().chain(r.mentions).collect(),
            };
        }
        if matches!(op, "*" | "+" | "<<") && (l.tainted || r.tainted) {
            self.events.push(Event {
                kind: EventKind::Arith,
                tok: op_tok,
                what: op.to_string(),
            });
        }
        l.join(r)
    }

    /// Clears every variable vouched for by a bounding comparison in
    /// `cond`, transitively through recorded derivation origins.
    fn clear_guarded(&mut self, cond: &Expr) {
        let mut names = BTreeSet::new();
        collect_bounding_mentions(cond, &mut names);
        let mut queue: Vec<String> = names.into_iter().collect();
        let mut seen = BTreeSet::new();
        while let Some(name) = queue.pop() {
            if !seen.insert(name.clone()) {
                continue;
            }
            if let Some(v) = self.vars.get_mut(&name) {
                v.tainted = false;
                v.float = false;
                for origin in v.origins.clone() {
                    queue.push(origin);
                }
            }
        }
    }
}

/// Key for a `self.field` / `x.field` receiver or assignment target.
fn field_key(recv: &Expr, name: &str) -> Option<String> {
    match recv {
        Expr::Path { segs, .. } if segs.len() == 1 => Some(format!("{}.{}", segs[0], name)),
        _ => None,
    }
}

/// The variable key a method receiver refers to, if it is a simple
/// local or `x.field` place.
fn receiver_key(recv: &Expr) -> Option<String> {
    match recv {
        Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].clone()),
        Expr::Field { recv, name } => field_key(recv, name),
        Expr::Ref { expr } | Expr::Unary { expr } => receiver_key(expr),
        _ => None,
    }
}

/// The variable key an assignment writes, if it is a simple place.
fn assign_target_key(lhs: &Expr) -> Option<String> {
    receiver_key(lhs)
}

/// Whether a block's top level diverges: `return`, `break`, `continue`
/// or a panicking macro.
fn block_diverges(b: &Block) -> bool {
    b.stmts.iter().any(|s| match s {
        Stmt::Expr(Expr::Return { .. }) | Stmt::Expr(Expr::Jump { .. }) => true,
        Stmt::Expr(Expr::MacroCall { name, .. }) => {
            matches!(
                name.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented" | "bail"
            )
        }
        _ => false,
    })
}

/// Collects variables mentioned in *bounding* comparisons inside a
/// guard condition: any relational comparison, or an equality whose
/// sides are not bare literals (`need != c.remaining()` bounds `need`;
/// `rows == 0` bounds nothing).
fn collect_bounding_mentions(cond: &Expr, out: &mut BTreeSet<String>) {
    match cond {
        Expr::Binary { op, lhs, rhs, .. } => match *op {
            "<" | "<=" | ">" | ">=" => {
                collect_mentions(lhs, out);
                collect_mentions(rhs, out);
            }
            "==" | "!=" if !is_literal(lhs) && !is_literal(rhs) => {
                collect_mentions(lhs, out);
                collect_mentions(rhs, out);
            }
            "&&" | "||" => {
                collect_bounding_mentions(lhs, out);
                collect_bounding_mentions(rhs, out);
            }
            _ => {}
        },
        Expr::Unary { expr } => collect_bounding_mentions(expr, out),
        // A method-call condition (`x.is_empty()`) bounds nothing.
        _ => {}
    }
}

/// All simple variable names syntactically inside `e`.
fn collect_mentions(e: &Expr, out: &mut BTreeSet<String>) {
    crate::syntax::visit(e, &mut |x| match x {
        Expr::Path { segs, .. } if segs.len() == 1 => {
            out.insert(segs[0].clone());
        }
        Expr::Field { recv, name } => {
            if let Some(key) = field_key(recv, name) {
                out.insert(key);
            }
        }
        _ => {}
    });
}

fn is_literal(e: &Expr) -> bool {
    matches!(e, Expr::Lit { .. } | Expr::Unary { .. })
        && match e {
            Expr::Unary { expr } => is_literal(expr),
            _ => true,
        }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events_for(src: &str) -> Vec<Event> {
        let file = SourceFile::parse("crates/net/src/fake.rs", src);
        analyze(&file)
    }

    fn kinds(src: &str) -> Vec<EventKind> {
        events_for(src).iter().map(|e| e.kind).collect()
    }

    #[test]
    fn decoded_length_reaching_with_capacity_fires() {
        let src = "fn decode(b: &[u8]) {\n\
                   let rows = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;\n\
                   let v: Vec<f32> = Vec::with_capacity(rows);\n\
                   }\n";
        assert_eq!(kinds(src), [EventKind::Alloc]);
    }

    #[test]
    fn taint_propagates_through_arithmetic_and_bindings() {
        let src = "fn f(c: &mut Cursor) {\n\
                   let n = c.u32(\"n\")? as usize;\n\
                   let m = n + 8;\n\
                   let v = vec![0u8; m];\n\
                   }\n";
        // The `+` itself and the vec! sink both fire.
        assert_eq!(kinds(src), [EventKind::Arith, EventKind::Alloc]);
    }

    #[test]
    fn get_u32_le_is_a_source_and_reserve_a_sink() {
        let src = "fn f(buf: &mut B, out: &mut Vec<u8>) {\n\
                   let len = buf.get_u32_le() as usize;\n\
                   out.reserve(len);\n\
                   }\n";
        assert_eq!(kinds(src), [EventKind::Alloc]);
    }

    #[test]
    fn diverging_comparison_guard_clears() {
        let src = "fn f(b: &mut B) {\n\
                   let n = b.get_u64_le() as usize;\n\
                   if n > MAX { return; }\n\
                   let v = Vec::with_capacity(n);\n\
                   }\n";
        assert!(kinds(src).is_empty());
    }

    #[test]
    fn equality_against_literal_zero_does_not_clear() {
        let src = "fn f(b: &mut B) {\n\
                   let n = b.get_u64_le() as usize;\n\
                   if n == 0 { return; }\n\
                   let v = Vec::with_capacity(n);\n\
                   }\n";
        assert_eq!(kinds(src), [EventKind::Alloc]);
    }

    #[test]
    fn checked_chain_guard_clears_transitively() {
        // The PR 8 frame.rs shape: the guard compares `need`, which was
        // derived from rows/count via checked ops; all three clear.
        let src = "fn f(c: &mut Cursor) -> Result<(), E> {\n\
                   let rows = c.u32(\"rows\")? as usize;\n\
                   let count = c.u32(\"count\")? as usize;\n\
                   let need = rows.checked_add(count).and_then(|w| w.checked_mul(4)).ok_or(bad())?;\n\
                   if need != c.remaining() { return Err(bad()); }\n\
                   let classes = Vec::with_capacity(rows);\n\
                   let vals = Vec::with_capacity(count);\n\
                   Ok(())\n\
                   }\n";
        assert!(kinds(src).is_empty(), "{:?}", events_for(src));
    }

    #[test]
    fn unchecked_multiply_on_decoded_length_fires() {
        let src = "fn f(c: &mut Cursor) -> Result<(), E> {\n\
                   let n = c.u64(\"n\")? as usize;\n\
                   if n * 4 > c.remaining() { return Err(bad()); }\n\
                   Ok(())\n\
                   }\n";
        assert_eq!(kinds(src), [EventKind::Arith]);
    }

    #[test]
    fn checked_mul_produces_clean_value_without_clearing_inputs() {
        // checked_mul bounds nothing about `n` itself: without a
        // comparison guard the allocation still fires.
        let src = "fn f(b: &mut B) {\n\
                   let n = b.get_u32_le() as usize;\n\
                   let bytes = n.checked_mul(4).unwrap();\n\
                   let v = Vec::with_capacity(n);\n\
                   }\n";
        assert_eq!(kinds(src), [EventKind::Alloc]);
    }

    #[test]
    fn len_of_materialized_container_is_clean() {
        let src = "fn f(items: &[Item]) {\n\
                   let v = Vec::with_capacity(items.len());\n\
                   }\n";
        assert!(kinds(src).is_empty());
    }

    #[test]
    fn container_push_taints_container_product() {
        let src = "fn f(b: &mut B) {\n\
                   let mut dims = Vec::new();\n\
                   let d = b.get_u64_le() as usize;\n\
                   dims.push(d);\n\
                   let count = dims.iter().product::<usize>();\n\
                   let v = Vec::with_capacity(count);\n\
                   }\n";
        assert_eq!(kinds(src), [EventKind::Alloc]);
    }

    #[test]
    fn tainted_slice_index_fires() {
        let src = "fn f(b: &mut B, data: &[f32]) {\n\
                   let at = b.get_u32_le() as usize;\n\
                   let x = data[at];\n\
                   }\n";
        assert_eq!(kinds(src), [EventKind::Index]);
    }

    #[test]
    fn json_float_taints_only_after_integer_cast() {
        let pure_float = "fn f(v: &Value) {\n\
                          let mean = v.as_f64().unwrap();\n\
                          let scaled = mean * 2.0;\n\
                          }\n";
        assert!(kinds(pure_float).is_empty());
        let as_len = "fn f(v: &Value) {\n\
                      let n = v.as_f64().unwrap() as usize;\n\
                      let buf = Vec::with_capacity(n);\n\
                      }\n";
        assert_eq!(kinds(as_len), [EventKind::Alloc]);
    }

    #[test]
    fn relational_guard_on_float_clears_before_cast() {
        // The cn-bench req_u64 shape: fract/negative checks vouch for
        // the number before the cast.
        let src = "fn f(v: &Value) -> Result<u64, E> {\n\
                   let num = v.as_f64().ok_or(bad())?;\n\
                   if num < 0.0 || num.fract() != 0.0 { return Err(bad()); }\n\
                   Ok(num as u64)\n\
                   }\n";
        assert!(kinds(src).is_empty());
    }

    #[test]
    fn assert_bounds_like_a_guard() {
        let src = "fn f(b: &mut B, cap: usize) {\n\
                   let n = b.get_u32_le() as usize;\n\
                   assert!(n <= cap);\n\
                   let v = Vec::with_capacity(n);\n\
                   }\n";
        assert!(kinds(src).is_empty());
    }

    #[test]
    fn sink_inside_closure_sees_captured_taint() {
        let src = "fn f(b: &mut B) {\n\
                   let n = b.get_u32_le() as usize;\n\
                   let make = || Vec::with_capacity(n);\n\
                   }\n";
        assert_eq!(kinds(src), [EventKind::Alloc]);
    }

    #[test]
    fn saturating_mul_result_is_clean() {
        let src = "fn f(b: &mut B) {\n\
                   let d = b.get_u64_le() as usize;\n\
                   let mut numel = 1usize;\n\
                   numel = numel.saturating_mul(d.max(1));\n\
                   let v = Vec::with_capacity(numel);\n\
                   }\n";
        assert!(kinds(src).is_empty());
    }

    #[test]
    fn compound_assign_multiply_fires() {
        let src = "fn f(b: &mut B) {\n\
                   let mut len = b.get_u32_le() as usize;\n\
                   len *= 4;\n\
                   }\n";
        assert_eq!(kinds(src), [EventKind::Arith]);
    }
}
