//! A lexed source file plus the derived structure rules need: test-code
//! spans, function spans and inline suppressions.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use crate::syntax::{self, FileSyntax};
use std::cell::OnceCell;

/// An inline suppression parsed from a
/// `// cn-lint: allow(rule-name, reason = "…")` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: String,
    /// The justification, if one was given.
    pub reason: Option<String>,
    /// 1-based line of the comment itself.
    pub line: u32,
    /// 1-based line the suppression applies to: the comment's own line
    /// for a trailing comment, the next line containing code for a
    /// standalone one.
    pub applies_to: u32,
}

/// A comment that contains the `cn-lint` marker but could not be parsed
/// as a well-formed suppression (reported as `malformed-suppression`).
#[derive(Debug, Clone)]
pub struct MalformedSuppression {
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// What was wrong.
    pub problem: String,
}

/// A span of one `fn` item: its name and the byte range of `fn … }`.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub start: usize,
    /// Byte offset one past the body's closing `}` (or the `;` of a
    /// bodyless declaration).
    pub end: usize,
    /// Index into the token stream of the body's `{`, if there is one.
    pub body_start: Option<usize>,
}

/// One file, lexed and analyzed, ready for rules to scan.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators; rules filter on this.
    pub path: String,
    /// The raw text.
    pub text: String,
    /// Code tokens (no comments).
    pub tokens: Vec<Token>,
    /// Comments.
    pub comments: Vec<Comment>,
    /// Byte ranges covered by `#[cfg(test)]` items and `#[test]` functions.
    pub test_spans: Vec<(usize, usize)>,
    /// Spans of all `fn` items, in source order.
    pub fn_spans: Vec<FnSpan>,
    /// Parsed suppressions.
    pub suppressions: Vec<Suppression>,
    /// `cn-lint` comments that failed to parse.
    pub malformed: Vec<MalformedSuppression>,
    /// Lazily-built syntax tree, shared by every syntax-aware rule.
    syntax: OnceCell<FileSyntax>,
}

impl SourceFile {
    /// Lexes and analyzes `text` under the given workspace-relative path.
    pub fn parse(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let path = path.into();
        let text = text.into();
        let Lexed { tokens, comments } = lex(&text);
        let test_spans = test_spans(&tokens, &text);
        let fn_spans = fn_spans(&tokens, &text);
        let (suppressions, malformed) = parse_suppressions(&comments, &tokens, &text);
        SourceFile {
            path,
            text,
            tokens,
            comments,
            test_spans,
            fn_spans,
            suppressions,
            malformed,
            syntax: OnceCell::new(),
        }
    }

    /// The syntax tree, parsed on first use and cached (the three
    /// dataflow rules share one parse per file).
    pub fn syntax(&self) -> &FileSyntax {
        self.syntax
            .get_or_init(|| syntax::parse(&self.tokens, &self.text))
    }

    /// The text of token `i`.
    pub fn tok(&self, i: usize) -> &str {
        let t = &self.tokens[i];
        &self.text[t.start..t.end]
    }

    /// Whether token `i` is an identifier with exactly this text.
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        i < self.tokens.len() && self.tokens[i].kind == TokenKind::Ident && self.tok(i) == text
    }

    /// Whether token `i` is punctuation with exactly this text.
    pub fn is_punct(&self, i: usize, text: &str) -> bool {
        i < self.tokens.len() && self.tokens[i].kind == TokenKind::Punct && self.tok(i) == text
    }

    /// Whether the byte offset lies inside test-only code.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Index of the token that starts the statement containing token `i`:
    /// the token after the closest preceding `;`, `{` or `}`.
    pub fn statement_start(&self, i: usize) -> usize {
        let mut j = i;
        while j > 0 {
            let prev = self.tok(j - 1);
            if matches!(prev, ";" | "{" | "}") {
                break;
            }
            j -= 1;
        }
        j
    }

    /// Index one past the end of the statement containing token `i`: the
    /// next `;`, `{` or `}` at or after `i`.
    pub fn statement_end(&self, i: usize) -> usize {
        let mut j = i;
        while j < self.tokens.len() && !matches!(self.tok(j), ";" | "{" | "}") {
            j += 1;
        }
        j
    }

    /// Index of the token holding the matching `)`/`]`/`}` for the opening
    /// bracket at `open`, or the last token if unbalanced.
    pub fn matching_close(&self, open: usize) -> usize {
        let close = match self.tok(open) {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            other => panic!("token {other:?} is not an opening bracket"),
        };
        let open_text = self.tok(open).to_string();
        let mut depth = 0usize;
        let mut j = open;
        while j < self.tokens.len() {
            let t = self.tok(j);
            if t == open_text {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.tokens.len().saturating_sub(1)
    }

    /// Index of the token holding the matching opening bracket for the
    /// closing bracket at `close`.
    pub fn matching_open(&self, close: usize) -> usize {
        let open = match self.tok(close) {
            ")" => "(",
            "]" => "[",
            "}" => "{",
            other => panic!("token {other:?} is not a closing bracket"),
        };
        let close_text = self.tok(close).to_string();
        let mut depth = 0usize;
        let mut j = close + 1;
        while j > 0 {
            j -= 1;
            let t = self.tok(j);
            if t == close_text {
                depth += 1;
            } else if t == open {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        0
    }
}

/// Computes the byte spans of test-only code: any item annotated
/// `#[cfg(test)]` (in any attribute position) or `#[test]`.
fn test_spans(tokens: &[Token], text: &str) -> Vec<(usize, usize)> {
    let tok = |i: usize| &text[tokens[i].start..tokens[i].end];
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(tok(i) == "#" && tok(i + 1) == "[") {
            i += 1;
            continue;
        }
        let attr_start_tok = i;
        // Scan the attribute group(s) in front of the item; remember
        // whether any of them marks test code.
        let mut is_test = false;
        let mut j = i;
        while j + 1 < tokens.len() && tok(j) == "#" && tok(j + 1) == "[" {
            let close = matching_bracket(tokens, text, j + 1);
            let inner: Vec<&str> = ((j + 2)..close).map(tok).collect();
            if inner.as_slice() == ["test"] || (inner.contains(&"cfg") && inner.contains(&"test")) {
                is_test = true;
            }
            j = close + 1;
        }
        if !is_test {
            i = j.max(i + 1);
            continue;
        }
        // Find the end of the annotated item: the matching `}` of its
        // first top-level `{`, or a `;` for bodyless items.
        let mut k = j;
        let mut end = tokens.last().map(|t| t.end).unwrap_or(0);
        while k < tokens.len() {
            match tok(k) {
                "{" => {
                    let close = matching_bracket(tokens, text, k);
                    end = tokens[close].end;
                    break;
                }
                ";" => {
                    end = tokens[k].end;
                    break;
                }
                // Skip over interior attributes of the item header.
                "#" if k + 1 < tokens.len() && tok(k + 1) == "[" => {
                    k = matching_bracket(tokens, text, k + 1) + 1;
                }
                _ => k += 1,
            }
        }
        spans.push((tokens[attr_start_tok].start, end));
        i = j.max(i + 1);
    }
    spans
}

/// Matching-close helper over raw token slices (used before a
/// [`SourceFile`] exists).
fn matching_bracket(tokens: &[Token], text: &str, open: usize) -> usize {
    let tok = |i: usize| &text[tokens[i].start..tokens[i].end];
    let (o, c) = match tok(open) {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        let t = tok(j);
        if t == o {
            depth += 1;
        } else if t == c {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Collects the spans of every `fn` item.
fn fn_spans(tokens: &[Token], text: &str) -> Vec<FnSpan> {
    let tok = |i: usize| &text[tokens[i].start..tokens[i].end];
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tok(i) != "fn" || tokens[i].kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // `fn` inside a type position (`fn(usize)`) has no name ident.
        if i + 1 >= tokens.len() || tokens[i + 1].kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = tok(i + 1).to_string();
        // Find the body `{` or a terminating `;` (trait method decl),
        // skipping balanced bracket groups of the signature.
        let mut j = i + 2;
        let mut body_start = None;
        let mut end = tokens.last().map(|t| t.end).unwrap_or(0);
        while j < tokens.len() {
            match tok(j) {
                "(" | "[" => j = matching_bracket(tokens, text, j) + 1,
                "{" => {
                    body_start = Some(j);
                    let close = matching_bracket(tokens, text, j);
                    end = tokens[close].end;
                    break;
                }
                ";" => {
                    end = tokens[j].end;
                    break;
                }
                _ => j += 1,
            }
        }
        spans.push(FnSpan {
            name,
            start: tokens[i].start,
            end,
            body_start,
        });
        i += 2;
    }
    spans
}

/// Parses `cn-lint` comments into suppressions and malformed markers.
fn parse_suppressions(
    comments: &[Comment],
    tokens: &[Token],
    text: &str,
) -> (Vec<Suppression>, Vec<MalformedSuppression>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Suppressions live in plain comments only; doc comments merely
        // *talk about* the syntax (this crate's own docs included).
        if c.doc {
            continue;
        }
        let body = &text[c.start..c.end];
        let Some(marker) = body.find("cn-lint") else {
            continue;
        };
        let after_marker = &body[marker + "cn-lint".len()..];
        // A prose mention ("the cn-lint binary") is fine; a comment that
        // pairs the marker with `allow` is a suppression attempt and must
        // parse exactly.
        if !after_marker.trim_start().starts_with(':') && !after_marker.contains("allow") {
            continue;
        }
        let rest = after_marker.trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            bad.push(MalformedSuppression {
                line: c.line,
                col: c.col,
                problem: "expected `cn-lint: allow(rule-name, reason = \"…\")`".to_string(),
            });
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => {
                // A trailing comment applies to its own line; a standalone
                // comment applies to the next line that has code on it.
                let code_before = tokens.iter().any(|t| t.line == c.line && t.start < c.start);
                let applies_to = if code_before {
                    c.line
                } else {
                    tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line)
                };
                good.push(Suppression {
                    rule,
                    reason,
                    line: c.line,
                    applies_to,
                });
            }
            Err(problem) => bad.push(MalformedSuppression {
                line: c.line,
                col: c.col,
                problem,
            }),
        }
    }
    (good, bad)
}

/// Parses `allow(rule-name)` or `allow(rule-name, reason = "…")`.
fn parse_allow(s: &str) -> Result<(String, Option<String>), String> {
    let Some(inner) = s
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('('))
    else {
        return Err("expected `allow(…)` after `cn-lint:`".to_string());
    };
    let Some(inner) = inner.trim_end().strip_suffix(')') else {
        return Err("unclosed `allow(`".to_string());
    };
    let (rule_part, reason_part) = match inner.find(',') {
        Some(comma) => (&inner[..comma], Some(inner[comma + 1..].trim())),
        None => (inner, None),
    };
    let rule = rule_part.trim();
    if rule.is_empty()
        || !rule
            .chars()
            .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '-')
    {
        return Err(format!("invalid rule name `{rule}`"));
    }
    let reason = match reason_part {
        None => None,
        Some(r) => {
            let Some(quoted) = r
                .strip_prefix("reason")
                .map(str::trim_start)
                .and_then(|t| t.strip_prefix('='))
                .map(str::trim_start)
            else {
                return Err("expected `reason = \"…\"` after the rule name".to_string());
            };
            let Some(value) = quoted.strip_prefix('"').and_then(|t| t.strip_suffix('"')) else {
                return Err("reason must be a double-quoted string".to_string());
            };
            if value.trim().is_empty() {
                return Err("reason must not be empty".to_string());
            }
            Some(value.to_string())
        }
    };
    Ok((rule.to_string(), reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_span_covers_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { let x = 1; }\n}\nfn also_live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        let live = src.find("live").unwrap();
        let inner = src.find("inner").unwrap();
        let also = src.find("also_live").unwrap();
        assert!(!f.in_test_code(live));
        assert!(f.in_test_code(inner));
        assert!(!f.in_test_code(also));
    }

    #[test]
    fn test_attribute_function_span() {
        let src = "#[test]\nfn check() { assert!(true); }\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.in_test_code(src.find("assert").unwrap()));
        assert!(!f.in_test_code(src.find("live").unwrap()));
    }

    #[test]
    fn stacked_attributes_before_test_item() {
        let src = "#[allow(dead_code)]\n#[cfg(test)]\nmod t { fn g() {} }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.in_test_code(src.find("g").unwrap()));
    }

    #[test]
    fn cfg_any_including_test_counts_as_test() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod t { fn g() {} }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.in_test_code(src.find("g").unwrap()));
    }

    #[test]
    fn fn_spans_with_nested_braces() {
        let src = "fn outer() { if x { y() } }\nfn next() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.fn_spans.len(), 2);
        assert_eq!(f.fn_spans[0].name, "outer");
        assert!(f.fn_spans[0].end <= src.find("fn next").unwrap());
    }

    #[test]
    fn trailing_suppression_applies_to_its_own_line() {
        let src = "let x = 1; // cn-lint: allow(some-rule, reason = \"why\")\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert_eq!(s.rule, "some-rule");
        assert_eq!(s.reason.as_deref(), Some("why"));
        assert_eq!(s.applies_to, 1);
    }

    #[test]
    fn standalone_suppression_applies_to_next_code_line() {
        let src = "// cn-lint: allow(some-rule)\n\n// another comment\nlet x = 1;\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.suppressions[0].applies_to, 4);
    }

    #[test]
    fn malformed_suppressions_are_reported() {
        for bad in [
            "// cn-lint allow(x)",
            "// cn-lint: deny(some-rule)",
            "// cn-lint: allow(Some_Rule)",
            "// cn-lint: allow(rule, reason = unquoted)",
            "// cn-lint: allow(rule, reason = \"\")",
            "// cn-lint: allow(rule",
        ] {
            let f = SourceFile::parse("x.rs", bad);
            assert_eq!(f.malformed.len(), 1, "{bad}");
            assert!(f.suppressions.is_empty(), "{bad}");
        }
    }

    #[test]
    fn suppression_syntax_in_a_string_is_ignored() {
        let src = "let s = \"// cn-lint: allow(x)\";\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.suppressions.is_empty());
        assert!(f.malformed.is_empty());
    }

    #[test]
    fn doc_comments_and_prose_mentions_are_not_suppressions() {
        let src = "/// Quote: `// cn-lint: allow(rule)` suppresses.\n//! cn-lint allow syntax doc\n// the cn-lint binary runs in CI\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.suppressions.is_empty());
        assert!(f.malformed.is_empty());
    }

    #[test]
    fn statement_boundaries() {
        let src = "let a = 1; let b = foo(x, y); let c = 3;";
        let f = SourceFile::parse("x.rs", src);
        let foo = f
            .tokens
            .iter()
            .position(|t| &src[t.start..t.end] == "foo")
            .unwrap();
        let start = f.statement_start(foo);
        assert_eq!(f.tok(start), "let");
        let end = f.statement_end(foo);
        assert_eq!(f.tok(end), ";");
    }
}
