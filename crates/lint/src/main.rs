//! The `cn-lint` binary: lints the workspace, prints diagnostics, exits
//! non-zero on any finding.
//!
//! ```text
//! cargo run -p cn-lint                      # human output, repo root
//! cargo run -p cn-lint -- --format json     # machine-readable (CI)
//! cargo run -p cn-lint -- --format sarif    # SARIF 2.1.0 (code scanning)
//! cargo run -p cn-lint -- --changed origin/main  # only files changed vs a ref
//! cargo run -p cn-lint -- --list-rules      # the catalog
//! cargo run -p cn-lint -- --root path/to/ws # explicit workspace root
//! ```
//!
//! Exit codes: 0 = clean, 1 = diagnostics found, 2 = usage or I/O error.

use cn_lint::engine::{json_escape, render_sarif};
use cn_lint::{rules, workspace};
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut changed: Option<String> = None;
    let mut list_rules = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "cn-lint: --format expects `human`, `json` or `sarif`, got {other:?}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("cn-lint: --root expects a directory");
                    return ExitCode::from(2);
                }
            },
            "--changed" => match args.next() {
                Some(gitref) => changed = Some(gitref),
                None => {
                    eprintln!("cn-lint: --changed expects a git ref (e.g. origin/main)");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!(
                    "cn-lint: static analysis for the CorrectNet workspace\n\
                     \n\
                     USAGE: cn-lint [--format human|json|sarif] [--root DIR]\n\
                     \x20              [--changed GIT_REF] [--list-rules]\n\
                     \n\
                     --changed GIT_REF  lint only files the working tree changed vs GIT_REF\n\
                     \n\
                     Suppress a finding inline with:\n\
                     // cn-lint: allow(rule-name, reason = \"why this site is sound\")"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cn-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let catalog = rules::catalog();
    if list_rules {
        for rule in &catalog {
            println!(
                "{:<26} {:<8} {}",
                rule.id(),
                rule.severity().name(),
                rule.summary()
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(default_root);
    let lint_result = match &changed {
        Some(gitref) => workspace::changed_files(&root, gitref)
            .and_then(|rels| workspace::lint_files(&root, &rels, &catalog)),
        None => workspace::lint_workspace(&root, &catalog),
    };
    let diags = match lint_result {
        Ok(d) => d,
        Err(err) => {
            eprintln!("cn-lint: {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Human => {
            for d in &diags {
                println!("{}", d.render_human());
            }
            if diags.is_empty() {
                eprintln!("cn-lint: clean");
            } else {
                eprintln!("cn-lint: {} diagnostic(s)", diags.len());
            }
        }
        Format::Json => {
            let body: Vec<String> = diags
                .iter()
                .map(|d| format!("  {}", d.render_json()))
                .collect();
            println!(
                "{{\n\"root\": \"{}\",\n\"count\": {},\n\"diagnostics\": [\n{}\n]\n}}",
                json_escape(&root.display().to_string()),
                diags.len(),
                body.join(",\n")
            );
        }
        Format::Sarif => {
            println!("{}", render_sarif(&diags, &catalog));
        }
    }

    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The workspace root when `--root` is absent: the current directory if
/// it looks like the workspace (has `Cargo.toml` and `crates/`),
/// otherwise two levels above this crate's manifest (which is
/// `crates/lint`).
fn default_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("Cargo.toml").exists() && cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}
