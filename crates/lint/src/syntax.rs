//! The syntax layer: a lightweight recursive-descent parser over the
//! token stream from [`crate::lexer`].
//!
//! Token-level rules can pin "this identifier never appears here", but
//! the PR 8 review bugs (a peer-supplied count reaching
//! `Vec::with_capacity` before the bytes-available check, a `4·n`
//! bounds check that wrapped, a worker loop without `catch_unwind`)
//! are *structural*: they need to know which expression flows into
//! which call. This module turns the flat token stream into just
//! enough structure for that — a brace tree of functions, blocks and
//! statements with call expressions, `let` bindings and method chains
//! resolved, plus receiver/argument identifier capture.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, never loop.** The parser runs over every `.rs`
//!    file in the workspace including macro bodies and half-edited
//!    code; anything it cannot understand becomes an [`Expr::Opaque`]
//!    node covering the confusing tokens, and every parse function
//!    makes progress.
//! 2. **Stay dependency-free.** No syn, no proc-macro2; the whole
//!    point of cn-lint is that it builds everywhere the workspace
//!    builds.
//! 3. **Model only what the dataflow layer consumes.** Types,
//!    generics, visibility and attributes are skipped, patterns are
//!    reduced to the identifiers they bind, struct literals keep only
//!    their field value expressions.
//!
//! Known ambiguities are resolved the way the language does: a `{`
//! after a path in `if`/`while`/`for`/`match` head position starts the
//! block, not a struct literal; `::<` turbofish is skipped; `'label:`
//! before a loop is consumed.

use crate::lexer::{is_keyword, Token, TokenKind};

/// Everything the parser extracted from one file: all `fn` items
/// (including nested ones and methods inside `impl`/`mod` blocks), in
/// the order their `fn` keywords appear.
#[derive(Debug, Default)]
pub struct FileSyntax {
    /// All parsed functions, flattened.
    pub fns: Vec<FnItem>,
}

impl FileSyntax {
    /// The first function with this name, if any (one-level call
    /// resolution for same-file helpers).
    pub fn fn_named(&self, name: &str) -> Option<&FnItem> {
        self.fns.iter().find(|f| f.name == name)
    }
}

/// One `fn` item: name, captured parameter identifiers and the body.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Token index of the name identifier.
    pub name_tok: usize,
    /// Identifiers bound by the parameter list (pattern idents only;
    /// types are skipped).
    pub params: Vec<String>,
    /// The body, or `None` for a bodyless trait declaration.
    pub body: Option<Block>,
}

/// A `{ … }` block: its bracket token indices and statements.
#[derive(Debug)]
pub struct Block {
    /// Token index of the `{`.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let PAT (= EXPR)? (else { … })? ;`
    Let {
        /// Identifiers the pattern binds.
        binds: Vec<String>,
        /// The initializer, if present.
        init: Option<Expr>,
    },
    /// An expression statement (assignments included, as
    /// [`Expr::Binary`] with an `=`-family operator).
    Expr(Expr),
}

/// Which kind of loop an [`Expr::Loop`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `loop { … }` — runs until an explicit exit.
    Loop,
    /// `while COND { … }` / `while let PAT = … { … }`.
    While,
    /// `for PAT in ITER { … }`.
    For,
}

/// One `match` arm, reduced to its pattern bindings and body.
#[derive(Debug)]
pub struct Arm {
    /// Identifiers the arm's pattern binds.
    pub binds: Vec<String>,
    /// The arm body.
    pub body: Expr,
}

/// An expression, reduced to the shapes the dataflow layer consumes.
#[derive(Debug)]
pub enum Expr {
    /// A (possibly qualified) path: `rows`, `Vec::with_capacity`,
    /// `self`. Turbofish segments are skipped.
    Path {
        /// The `::`-separated segments.
        segs: Vec<String>,
        /// Token index of the first segment.
        tok: usize,
        /// Token index of the last segment.
        last_tok: usize,
    },
    /// A literal (number / string / char / bool / unit).
    Lit {
        /// Token index of the literal.
        tok: usize,
    },
    /// `(a, b, …)` with two or more elements.
    Tuple {
        /// The elements.
        items: Vec<Expr>,
    },
    /// `[a, b, …]` or `[x; n]`.
    Array {
        /// Elements, or `[value, length]` for the repeat form.
        items: Vec<Expr>,
        /// Whether this is the `[x; n]` repeat form.
        repeat: bool,
    },
    /// `callee(args…)`.
    Call {
        /// The callee (usually a [`Expr::Path`]).
        callee: Box<Expr>,
        /// The arguments.
        args: Vec<Expr>,
    },
    /// `recv.name(args…)`.
    Method {
        /// The receiver.
        recv: Box<Expr>,
        /// The method name.
        name: String,
        /// Token index of the method name.
        name_tok: usize,
        /// The arguments.
        args: Vec<Expr>,
    },
    /// `recv.name` (tuple indices included, as their digit text).
    Field {
        /// The receiver.
        recv: Box<Expr>,
        /// The field name.
        name: String,
    },
    /// `recv[index]`.
    Index {
        /// The indexed expression.
        recv: Box<Expr>,
        /// The index (ranges appear as a `..` [`Expr::Binary`]).
        index: Box<Expr>,
        /// Token index of the `[`.
        tok: usize,
    },
    /// `name!(args…)` / `name![…]`; a brace-delimited body is kept as
    /// one [`Expr::Opaque`] argument.
    MacroCall {
        /// The macro name (last path segment).
        name: String,
        /// Token index of the name.
        name_tok: usize,
        /// Top-level comma/semicolon-separated arguments.
        args: Vec<Expr>,
        /// Whether the last separator was `;` (the `vec![x; n]` form).
        repeat: bool,
    },
    /// `lhs OP rhs`, including comparisons, ranges and (compound)
    /// assignments.
    Binary {
        /// The operator text.
        op: &'static str,
        /// Token index of the operator.
        op_tok: usize,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `!x`, `-x`, `*x` or a prefix range `..x`.
    Unary {
        /// The operand.
        expr: Box<Expr>,
    },
    /// `expr as TYPE`.
    Cast {
        /// The value being cast.
        expr: Box<Expr>,
        /// First identifier of the target type (`usize`, `u64`, …).
        ty: String,
    },
    /// `&expr` / `&mut expr`.
    Ref {
        /// The referent.
        expr: Box<Expr>,
    },
    /// `expr?`.
    Try {
        /// The inner expression.
        expr: Box<Expr>,
    },
    /// `|params| body` / `move || body`.
    Closure {
        /// Identifiers bound by the parameter list.
        params: Vec<String>,
        /// The body.
        body: Box<Expr>,
    },
    /// `if COND { … } (else …)?`.
    If {
        /// The condition (`if let` appears as [`Expr::LetCond`]).
        cond: Box<Expr>,
        /// The then-block.
        then: Block,
        /// The else branch: another `If` or a `Block`.
        els: Option<Box<Expr>>,
    },
    /// The `let PAT = EXPR` inside `if let` / `while let`.
    LetCond {
        /// Identifiers the pattern binds.
        binds: Vec<String>,
        /// The scrutinee.
        expr: Box<Expr>,
    },
    /// `match HEAD { arms… }`.
    Match {
        /// The scrutinee.
        head: Box<Expr>,
        /// The arms.
        arms: Vec<Arm>,
    },
    /// `loop`/`while`/`for`.
    Loop {
        /// Which loop form.
        kind: LoopKind,
        /// Identifiers bound by a `for` pattern.
        binds: Vec<String>,
        /// The `while` condition or `for` iterator.
        head: Option<Box<Expr>>,
        /// The body.
        body: Block,
    },
    /// `return (EXPR)?`.
    Return {
        /// The returned value, if any.
        value: Option<Box<Expr>>,
    },
    /// `break (EXPR)?` or `continue`.
    Jump {
        /// A value carried by `break`, if any.
        value: Option<Box<Expr>>,
    },
    /// A bare `{ … }` (or `unsafe { … }`) block expression.
    Block(Block),
    /// `Path { field: value, … }` — only the field value expressions
    /// are kept.
    StructLit {
        /// The field value expressions (shorthand fields appear as
        /// [`Expr::Path`]).
        fields: Vec<Expr>,
    },
    /// Tokens the parser could not model; covers `[from, to]`
    /// inclusive token indices.
    Opaque {
        /// First covered token.
        from: usize,
        /// Last covered token.
        to: usize,
    },
}

/// Parses one file's token stream. Infallible: unmodelled syntax
/// degrades to [`Expr::Opaque`], never an error.
pub fn parse(tokens: &[Token], text: &str) -> FileSyntax {
    let mut p = Parser {
        toks: tokens,
        text,
        i: 0,
        depth: 0,
        fns: Vec::new(),
    };
    while p.i < p.toks.len() {
        if p.at_fn_item() {
            p.parse_fn_item();
        } else {
            p.i += 1;
        }
    }
    FileSyntax { fns: p.fns }
}

/// Calls `f` on `e` and every sub-expression, including block
/// statements, loop heads, match arms and closure bodies.
pub fn visit<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
        Expr::Tuple { items } | Expr::Array { items, .. } => {
            items.iter().for_each(|x| visit(x, f));
        }
        Expr::Call { callee, args } => {
            visit(callee, f);
            args.iter().for_each(|x| visit(x, f));
        }
        Expr::Method { recv, args, .. } => {
            visit(recv, f);
            args.iter().for_each(|x| visit(x, f));
        }
        Expr::Field { recv, .. } => visit(recv, f),
        Expr::Index { recv, index, .. } => {
            visit(recv, f);
            visit(index, f);
        }
        Expr::MacroCall { args, .. } => args.iter().for_each(|x| visit(x, f)),
        Expr::Binary { lhs, rhs, .. } => {
            visit(lhs, f);
            visit(rhs, f);
        }
        Expr::Unary { expr }
        | Expr::Cast { expr, .. }
        | Expr::Ref { expr }
        | Expr::Try { expr } => visit(expr, f),
        Expr::Closure { body, .. } => visit(body, f),
        Expr::If { cond, then, els } => {
            visit(cond, f);
            visit_block(then, f);
            if let Some(e) = els {
                visit(e, f);
            }
        }
        Expr::LetCond { expr, .. } => visit(expr, f),
        Expr::Match { head, arms } => {
            visit(head, f);
            arms.iter().for_each(|a| visit(&a.body, f));
        }
        Expr::Loop { head, body, .. } => {
            if let Some(h) = head {
                visit(h, f);
            }
            visit_block(body, f);
        }
        Expr::Return { value } | Expr::Jump { value } => {
            if let Some(v) = value {
                visit(v, f);
            }
        }
        Expr::Block(b) => visit_block(b, f),
        Expr::StructLit { fields } => fields.iter().for_each(|x| visit(x, f)),
    }
}

/// [`visit`] over every expression in a block.
pub fn visit_block<'a>(b: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for s in &b.stmts {
        match s {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    visit(e, f);
                }
            }
            Stmt::Expr(e) => visit(e, f),
        }
    }
}

/// Recursion guard: deeper nesting than this degrades to
/// [`Expr::Opaque`] instead of risking the parser's own stack.
const MAX_DEPTH: usize = 200;

struct Parser<'a> {
    toks: &'a [Token],
    text: &'a str,
    i: usize,
    depth: usize,
    fns: Vec<FnItem>,
}

impl<'a> Parser<'a> {
    fn tok_text(&self, i: usize) -> &'a str {
        match self.toks.get(i) {
            Some(t) => &self.text[t.start..t.end],
            None => "",
        }
    }

    fn cur(&self) -> &'a str {
        self.tok_text(self.i)
    }

    fn at(&self, s: &str) -> bool {
        self.cur() == s
    }

    fn at_kind(&self, k: TokenKind) -> bool {
        self.toks.get(self.i).map(|t| t.kind) == Some(k)
    }

    fn kind_at(&self, i: usize) -> Option<TokenKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn is_ident_at(&self, i: usize) -> bool {
        self.kind_at(i) == Some(TokenKind::Ident)
    }

    fn eof(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.at(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// `fn` keyword followed by a name identifier (not `fn(usize)` in a
    /// type position, not `$name` in a macro definition).
    fn at_fn_item(&self) -> bool {
        self.at("fn")
            && self.at_kind(TokenKind::Ident)
            && self.is_ident_at(self.i + 1)
            && !is_keyword(self.tok_text(self.i + 1))
    }

    /// Index of the matching close bracket for the open bracket at `open`,
    /// or the last token when unbalanced.
    fn matching(&self, open: usize) -> usize {
        let (o, c) = match self.tok_text(open) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return open,
        };
        let mut depth = 0usize;
        let mut j = open;
        while j < self.toks.len() {
            let t = self.tok_text(j);
            if t == o {
                depth += 1;
            } else if t == c {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.toks.len().saturating_sub(1)
    }

    /// Skips a balanced `<…>` group starting at the current `<`,
    /// treating `>>` as two closes (turbofish and generic args).
    fn skip_angles(&mut self) {
        debug_assert!(self.at("<") || self.at("<<"));
        let mut depth: isize = 0;
        while !self.eof() {
            match self.cur() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                ">=" => depth -= 1,
                ">>=" => depth -= 2,
                "(" | "[" => {
                    let close = self.matching(self.i);
                    self.i = close;
                }
                ";" | "{" | "}" => break, // never part of generic args
                _ => {}
            }
            self.bump();
            if depth <= 0 {
                break;
            }
        }
    }

    /// Skips `#[…]` / `#![…]` attribute groups at the cursor.
    fn skip_attrs(&mut self) {
        while self.at("#") {
            let mut j = self.i + 1;
            if self.tok_text(j) == "!" {
                j += 1;
            }
            if self.tok_text(j) != "[" {
                break;
            }
            self.i = self.matching(j) + 1;
        }
    }

    /// Parses `fn name…` at the cursor into [`Parser::fns`], leaving the
    /// cursor after the body (or the `;`).
    fn parse_fn_item(&mut self) {
        self.bump(); // fn
        let name_tok = self.i;
        let name = self.cur().to_string();
        self.bump();
        if self.at("<") {
            self.skip_angles();
        }
        // Parameter list.
        let mut params = Vec::new();
        if self.at("(") {
            let close = self.matching(self.i);
            params = self.param_idents(self.i + 1, close);
            self.i = close + 1;
        }
        // Return type / where clause: scan to the body `{` or a `;`,
        // skipping bracketed groups (`-> [f32; 4]`, `where F: Fn(usize)`).
        let idx = self.fns.len();
        self.fns.push(FnItem {
            name,
            name_tok,
            params,
            body: None,
        });
        while !self.eof() {
            match self.cur() {
                "(" | "[" => self.i = self.matching(self.i) + 1,
                "<" => self.skip_angles(),
                "{" => {
                    let body = self.parse_block();
                    self.fns[idx].body = Some(body);
                    return;
                }
                ";" => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Pattern identifiers of a parameter list between token indices
    /// `[from, to)`: the idents of each top-level comma segment before
    /// its `:` (so `mut rows: usize` → `rows`, `(a, b): P` → `a, b`,
    /// `&self` → nothing).
    fn param_idents(&self, from: usize, to: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut j = from;
        let mut in_type = false;
        let mut angle: isize = 0;
        while j < to {
            match self.tok_text(j) {
                "," if angle <= 0 => in_type = false,
                ":" => in_type = true,
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                t if !in_type
                    && self.is_ident_at(j)
                    && !is_keyword(t)
                    && !t.starts_with(|c: char| c.is_ascii_uppercase()) =>
                {
                    out.push(t.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        out
    }

    /// Parses the `{ … }` at the cursor.
    fn parse_block(&mut self) -> Block {
        let open = self.i;
        if !self.eat("{") {
            // Resync stub: callers only reach this on malformed input.
            return Block {
                open,
                close: open,
                stmts: Vec::new(),
            };
        }
        let hard_close = self.matching(open);
        let mut stmts = Vec::new();
        loop {
            if self.eof() || self.i > hard_close {
                break;
            }
            if self.i == hard_close {
                self.bump();
                break;
            }
            if self.eat(";") {
                continue;
            }
            self.skip_attrs();
            if self.at_fn_item() {
                self.parse_fn_item();
                continue;
            }
            if self.at("pub") {
                // Visibility prefix of a block-local item; re-dispatch.
                self.bump();
                continue;
            }
            if self.at_item_keyword() {
                self.skip_item(hard_close);
                continue;
            }
            if self.at("let") && self.at_kind(TokenKind::Ident) {
                stmts.push(self.parse_let());
                continue;
            }
            let before = self.i;
            let e = self.parse_expr(false);
            stmts.push(Stmt::Expr(e));
            if self.i == before {
                // Safety net: guarantee progress on any input.
                self.bump();
            }
        }
        Block {
            open,
            close: hard_close,
            stmts,
        }
    }

    /// Item keywords that can open a non-`fn` item inside a block.
    /// `const`/`static`/`type` only count when followed by an
    /// identifier (so `const { … }` blocks and macro fragments pass
    /// through the expression path).
    fn at_item_keyword(&self) -> bool {
        if !self.at_kind(TokenKind::Ident) {
            return false;
        }
        match self.cur() {
            "use" | "mod" | "struct" | "enum" | "impl" | "trait" | "extern" => true,
            "const" | "static" | "type" => self.is_ident_at(self.i + 1),
            "macro_rules" => self.tok_text(self.i + 1) == "!",
            _ => false,
        }
    }

    /// Skips one item: to the next top-level `;` or past the first
    /// balanced `{…}`, whichever comes first, never beyond `limit`.
    fn skip_item(&mut self, limit: usize) {
        while !self.eof() && self.i < limit {
            match self.cur() {
                ";" => {
                    self.bump();
                    return;
                }
                "(" | "[" => self.i = self.matching(self.i) + 1,
                "{" => {
                    self.i = self.matching(self.i) + 1;
                    return;
                }
                "=" => {
                    // `type X = …;` / `const C: T = …;` — the value may
                    // contain braces that are not the item body.
                    self.bump();
                    let _ = self.parse_expr(false);
                }
                _ => self.bump(),
            }
        }
    }

    /// Parses `let PAT (: TYPE)? (= EXPR)? (else { … })? ;?`.
    fn parse_let(&mut self) -> Stmt {
        self.bump(); // let
        let binds = self.pattern_binds(&["=", ";"]);
        let mut init = None;
        if self.eat("=") {
            init = Some(self.parse_expr(false));
        }
        if self.at("else") {
            // `let … else { diverge }`.
            self.bump();
            if self.at("{") {
                let b = self.parse_block();
                // The else-block of let-else always diverges; keep it as
                // an expression statement so its contents stay visible.
                if let Some(e) = init {
                    init = Some(Expr::Binary {
                        op: "let-else",
                        op_tok: b.open,
                        lhs: Box::new(e),
                        rhs: Box::new(Expr::Block(b)),
                    });
                }
            }
        }
        self.eat(";");
        Stmt::Let { binds, init }
    }

    /// Collects the identifiers a pattern binds, consuming tokens until
    /// one of `stops` at bracket depth 0 (or a block `{` / `}` / EOF).
    /// A `{` directly after a path segment is a *struct pattern* and is
    /// descended into (`Frame { kind, len }` binds both fields); any
    /// other `{` ends the pattern. Lowercase non-keyword idents not
    /// followed by `::`/`(`/`!` count as bindings; a top-level `:`
    /// switches into type position (which binds nothing); a guard's
    /// `if` stops the capture.
    fn pattern_binds(&mut self, stops: &[&str]) -> Vec<String> {
        let mut out = Vec::new();
        let mut depth = 0usize;
        let mut angle: isize = 0;
        let mut in_type = false;
        let mut in_guard = false;
        let mut prev_ident = false;
        while !self.eof() {
            let t = self.cur();
            if depth == 0 && angle <= 0 && (stops.contains(&t) || t == "}") {
                break;
            }
            if t == "{" && depth == 0 && !prev_ident {
                break;
            }
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                // Angle depth only matters for generics in type ascriptions
                // and paths; inside a match guard `<`/`>` are comparisons.
                "<" if !in_guard => angle += 1,
                "<<" if !in_guard => angle += 2,
                ">" if !in_guard => angle = (angle - 1).max(0),
                ">>" if !in_guard => angle = (angle - 2).max(0),
                ":" if depth == 0 => in_type = true,
                "," if depth == 0 => in_type = false,
                "if" => {
                    in_guard = true;
                    angle = 0;
                }
                _ => {
                    if !in_type
                        && !in_guard
                        && self.at_kind(TokenKind::Ident)
                        && !is_keyword(t)
                        && !t.starts_with(|c: char| c.is_ascii_uppercase())
                        && !matches!(self.tok_text(self.i + 1), "::" | "(" | "!")
                        && t != "_"
                    {
                        out.push(t.to_string());
                    }
                }
            }
            prev_ident = self.at_kind(TokenKind::Ident) && !is_keyword(t);
            self.bump();
        }
        out
    }

    // ---- expression parsing (precedence climbing) ----

    /// Parses one expression. `no_struct` suppresses struct-literal
    /// interpretation of `Path {` (condition / scrutinee position).
    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            return self.opaque_to_stmt_end();
        }
        self.depth += 1;
        let e = self.parse_assign(no_struct);
        self.depth -= 1;
        e
    }

    fn parse_assign(&mut self, ns: bool) -> Expr {
        let lhs = self.parse_range(ns);
        let op = match self.cur() {
            "=" => "=",
            "+=" => "+=",
            "-=" => "-=",
            "*=" => "*=",
            "/=" => "/=",
            "%=" => "%=",
            "<<=" => "<<=",
            ">>=" => ">>=",
            "&=" => "&=",
            "|=" => "|=",
            "^=" => "^=",
            _ => return lhs,
        };
        let op_tok = self.i;
        self.bump();
        let rhs = self.parse_expr(ns);
        Expr::Binary {
            op,
            op_tok,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    fn at_expr_start(&self) -> bool {
        if self.eof() {
            return false;
        }
        match self.kind_at(self.i) {
            Some(TokenKind::Ident) => !matches!(self.cur(), "in" | "else" | "where" | "as"),
            Some(TokenKind::Punct) => {
                matches!(
                    self.cur(),
                    "(" | "[" | "{" | "&" | "&&" | "!" | "-" | "*" | "|" | "||"
                )
            }
            Some(_) => true,
            None => false,
        }
    }

    fn parse_range(&mut self, ns: bool) -> Expr {
        if self.at("..") || self.at("..=") {
            let op_tok = self.i;
            self.bump();
            if self.at_expr_start() && !(ns && self.at("{")) {
                let rhs = self.parse_or(ns);
                return Expr::Unary {
                    expr: Box::new(rhs),
                };
            }
            return Expr::Lit { tok: op_tok };
        }
        let lhs = self.parse_or(ns);
        if self.at("..") || self.at("..=") {
            let op_tok = self.i;
            self.bump();
            let rhs = if self.at_expr_start() && !(ns && self.at("{")) {
                self.parse_or(ns)
            } else {
                Expr::Lit { tok: op_tok }
            };
            return Expr::Binary {
                op: "..",
                op_tok,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        lhs
    }

    fn parse_or(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_and(ns);
        while self.at("||") {
            let op_tok = self.i;
            self.bump();
            let rhs = self.parse_and(ns);
            lhs = Expr::Binary {
                op: "||",
                op_tok,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        lhs
    }

    fn parse_and(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_cmp(ns);
        while self.at("&&") {
            let op_tok = self.i;
            self.bump();
            let rhs = self.parse_cmp(ns);
            lhs = Expr::Binary {
                op: "&&",
                op_tok,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        lhs
    }

    fn parse_cmp(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_bitor(ns);
        loop {
            let op = match self.cur() {
                "==" => "==",
                "!=" => "!=",
                "<" => "<",
                "<=" => "<=",
                ">" => ">",
                ">=" => ">=",
                _ => return lhs,
            };
            let op_tok = self.i;
            self.bump();
            let rhs = self.parse_bitor(ns);
            lhs = Expr::Binary {
                op,
                op_tok,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_bitor(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_bitxor(ns);
        while self.at("|") {
            let op_tok = self.i;
            self.bump();
            let rhs = self.parse_bitxor(ns);
            lhs = Expr::Binary {
                op: "|",
                op_tok,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        lhs
    }

    fn parse_bitxor(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_bitand(ns);
        while self.at("^") {
            let op_tok = self.i;
            self.bump();
            let rhs = self.parse_bitand(ns);
            lhs = Expr::Binary {
                op: "^",
                op_tok,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        lhs
    }

    fn parse_bitand(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_shift(ns);
        while self.at("&") {
            let op_tok = self.i;
            self.bump();
            let rhs = self.parse_shift(ns);
            lhs = Expr::Binary {
                op: "&",
                op_tok,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        lhs
    }

    fn parse_shift(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_addsub(ns);
        loop {
            let op = match self.cur() {
                "<<" => "<<",
                ">>" => ">>",
                _ => return lhs,
            };
            let op_tok = self.i;
            self.bump();
            let rhs = self.parse_addsub(ns);
            lhs = Expr::Binary {
                op,
                op_tok,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_addsub(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_muldiv(ns);
        loop {
            let op = match self.cur() {
                "+" => "+",
                "-" => "-",
                _ => return lhs,
            };
            let op_tok = self.i;
            self.bump();
            let rhs = self.parse_muldiv(ns);
            lhs = Expr::Binary {
                op,
                op_tok,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_muldiv(&mut self, ns: bool) -> Expr {
        let mut lhs = self.parse_cast(ns);
        loop {
            let op = match self.cur() {
                "*" => "*",
                "/" => "/",
                "%" => "%",
                _ => return lhs,
            };
            let op_tok = self.i;
            self.bump();
            let rhs = self.parse_cast(ns);
            lhs = Expr::Binary {
                op,
                op_tok,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_cast(&mut self, ns: bool) -> Expr {
        let mut e = self.parse_unary(ns);
        while self.at("as") && self.at_kind(TokenKind::Ident) {
            self.bump();
            let ty = self.consume_type();
            e = Expr::Cast {
                expr: Box::new(e),
                ty,
            };
        }
        e
    }

    /// Consumes a type after `as` (or a closure's `->`), returning its
    /// first identifier.
    fn consume_type(&mut self) -> String {
        let mut first = String::new();
        // Pointer / reference / qualifier prefixes.
        loop {
            match self.cur() {
                "*" | "&" | "&&" => self.bump(),
                "const" | "mut" | "dyn" | "impl" => self.bump(),
                _ => break,
            }
            if self.at_kind(TokenKind::Lifetime) {
                self.bump();
            }
        }
        while !self.eof() {
            if self.at_kind(TokenKind::Ident) && !matches!(self.cur(), "as" | "else" | "in") {
                if first.is_empty() {
                    first = self.cur().to_string();
                }
                self.bump();
            } else if self.at("::") {
                self.bump();
            } else if self.at("<") || self.at("<<") {
                self.skip_angles();
            } else if self.at("(") || self.at("[") {
                self.i = self.matching(self.i) + 1;
            } else {
                break;
            }
        }
        first
    }

    fn parse_unary(&mut self, ns: bool) -> Expr {
        match self.cur() {
            "!" | "-" => {
                self.bump();
                let e = self.parse_unary(ns);
                Expr::Unary { expr: Box::new(e) }
            }
            "*" => {
                self.bump();
                let e = self.parse_unary(ns);
                Expr::Unary { expr: Box::new(e) }
            }
            "&" | "&&" => {
                self.bump();
                self.eat("mut");
                let e = self.parse_unary(ns);
                Expr::Ref { expr: Box::new(e) }
            }
            _ => self.parse_postfix(ns),
        }
    }

    fn parse_postfix(&mut self, ns: bool) -> Expr {
        let mut e = self.parse_primary(ns);
        loop {
            if self.at(".") {
                let after = self.i + 1;
                if self.kind_at(after) == Some(TokenKind::Number) {
                    // Tuple field `pair.0`.
                    let name = self.tok_text(after).to_string();
                    self.i = after + 1;
                    e = Expr::Field {
                        recv: Box::new(e),
                        name,
                    };
                    continue;
                }
                if !self.is_ident_at(after) {
                    break;
                }
                let name = self.tok_text(after).to_string();
                if name == "await" {
                    self.i = after + 1;
                    continue;
                }
                let name_tok = after;
                self.i = after + 1;
                // Turbofish between name and call: `collect::<Vec<_>>()`.
                if self.at("::") && self.tok_text(self.i + 1) == "<" {
                    self.bump();
                    self.skip_angles();
                }
                if self.at("(") {
                    let args = self.parse_call_args();
                    e = Expr::Method {
                        recv: Box::new(e),
                        name,
                        name_tok,
                        args,
                    };
                } else {
                    e = Expr::Field {
                        recv: Box::new(e),
                        name,
                    };
                }
                continue;
            }
            if self.at("(") {
                let args = self.parse_call_args();
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                };
                continue;
            }
            if self.at("[") {
                let tok = self.i;
                let close = self.matching(tok);
                self.bump();
                let index = self.parse_expr(false);
                self.i = close + 1;
                e = Expr::Index {
                    recv: Box::new(e),
                    index: Box::new(index),
                    tok,
                };
                continue;
            }
            if self.at("?") {
                self.bump();
                e = Expr::Try { expr: Box::new(e) };
                continue;
            }
            break;
        }
        e
    }

    /// Parses `( … )` call arguments at the cursor, split on top-level
    /// commas.
    fn parse_call_args(&mut self) -> Vec<Expr> {
        let open = self.i;
        let close = self.matching(open);
        self.bump();
        let mut args = Vec::new();
        while self.i < close {
            let before = self.i;
            args.push(self.parse_expr(false));
            if self.i <= before {
                self.bump();
            }
            if !self.eat(",") && self.i < close {
                // The expr parser stopped short (unmodelled syntax):
                // cover the remainder of this argument opaquely.
                let from = self.i;
                while self.i < close && !self.at(",") {
                    match self.cur() {
                        "(" | "[" | "{" => self.i = self.matching(self.i) + 1,
                        _ => self.bump(),
                    }
                }
                if self.i > from {
                    args.push(Expr::Opaque {
                        from,
                        to: self.i - 1,
                    });
                }
                self.eat(",");
            }
        }
        self.i = close + 1;
        args
    }

    fn parse_primary(&mut self, ns: bool) -> Expr {
        if self.eof() {
            return Expr::Opaque {
                from: self.toks.len().saturating_sub(1),
                to: self.toks.len().saturating_sub(1),
            };
        }
        // Loop labels: `'outer: loop { … }`.
        if self.at_kind(TokenKind::Lifetime) && self.tok_text(self.i + 1) == ":" {
            self.bump();
            self.bump();
            return self.parse_primary(ns);
        }
        match self.kind_at(self.i) {
            Some(TokenKind::Number)
            | Some(TokenKind::Str)
            | Some(TokenKind::Char)
            | Some(TokenKind::Lifetime) => {
                let tok = self.i;
                self.bump();
                return Expr::Lit { tok };
            }
            _ => {}
        }
        match self.cur() {
            "if" => return self.parse_if(),
            "match" => return self.parse_match(),
            "loop" | "while" | "for" => return self.parse_loop(),
            "return" => {
                self.bump();
                let value = if self.at_expr_start() && !self.at("{") {
                    Some(Box::new(self.parse_expr(ns)))
                } else {
                    None
                };
                return Expr::Return { value };
            }
            "break" => {
                self.bump();
                if self.at_kind(TokenKind::Lifetime) {
                    self.bump();
                }
                let value = if self.at_expr_start() && !self.at("{") {
                    Some(Box::new(self.parse_expr(ns)))
                } else {
                    None
                };
                return Expr::Jump { value };
            }
            "continue" => {
                self.bump();
                if self.at_kind(TokenKind::Lifetime) {
                    self.bump();
                }
                return Expr::Jump { value: None };
            }
            "move" => {
                self.bump();
                return self.parse_closure();
            }
            "unsafe" => {
                self.bump();
                if self.at("{") {
                    return Expr::Block(self.parse_block());
                }
                return self.opaque_to_stmt_end();
            }
            "let" => {
                // `if let` / `while let` condition position.
                self.bump();
                let binds = self.pattern_binds(&["="]);
                self.eat("=");
                let expr = self.parse_expr(true);
                return Expr::LetCond {
                    binds,
                    expr: Box::new(expr),
                };
            }
            "true" | "false" => {
                let tok = self.i;
                self.bump();
                return Expr::Lit { tok };
            }
            "|" | "||" => return self.parse_closure(),
            "(" => {
                let close = self.matching(self.i);
                self.bump();
                if self.i >= close {
                    let tok = close;
                    self.i = close + 1;
                    return Expr::Lit { tok };
                }
                let mut items = Vec::new();
                while self.i < close {
                    let before = self.i;
                    items.push(self.parse_expr(false));
                    if self.i <= before {
                        self.bump();
                    }
                    self.eat(",");
                }
                self.i = close + 1;
                return if items.len() == 1 {
                    items.pop().unwrap()
                } else {
                    Expr::Tuple { items }
                };
            }
            "[" => {
                let close = self.matching(self.i);
                self.bump();
                let mut items = Vec::new();
                let mut repeat = false;
                while self.i < close {
                    let before = self.i;
                    items.push(self.parse_expr(false));
                    if self.i <= before {
                        self.bump();
                    }
                    if self.eat(";") {
                        repeat = true;
                    } else {
                        self.eat(",");
                    }
                }
                self.i = close + 1;
                return Expr::Array { items, repeat };
            }
            "{" => return Expr::Block(self.parse_block()),
            _ => {}
        }
        if self.at_kind(TokenKind::Ident) {
            return self.parse_path_expr(ns);
        }
        // Unknown punctuation: consume one token opaquely.
        let tok = self.i;
        self.bump();
        Expr::Opaque { from: tok, to: tok }
    }

    /// A path, then whatever it heads: macro call, struct literal or a
    /// plain path expression.
    fn parse_path_expr(&mut self, ns: bool) -> Expr {
        let tok = self.i;
        let mut last_tok = self.i;
        let mut segs = vec![self.cur().to_string()];
        self.bump();
        while self.at("::") {
            if self.tok_text(self.i + 1) == "<" {
                // Turbofish: `Vec::<u8>::with_capacity`.
                self.bump();
                self.skip_angles();
                continue;
            }
            if !self.is_ident_at(self.i + 1) {
                break;
            }
            self.bump();
            last_tok = self.i;
            segs.push(self.cur().to_string());
            self.bump();
        }
        if self.at("!") && self.tok_text(self.i + 1) != "=" {
            // Macro call (`!=` is handled by the lexer as one token, so
            // a bare `!` here is really a macro bang).
            let name = segs.last().cloned().unwrap_or_default();
            let name_tok = last_tok;
            self.bump();
            return self.parse_macro_args(name, name_tok);
        }
        if !ns && self.at("{") && struct_lit_head(&segs) {
            let fields = self.parse_struct_lit_fields();
            return Expr::StructLit { fields };
        }
        Expr::Path {
            segs,
            tok,
            last_tok,
        }
    }

    /// Arguments of a macro call whose `!` was just consumed.
    fn parse_macro_args(&mut self, name: String, name_tok: usize) -> Expr {
        let delim = self.cur();
        if delim == "{" {
            let open = self.i;
            let close = self.matching(open);
            self.i = close + 1;
            return Expr::MacroCall {
                name,
                name_tok,
                args: vec![Expr::Opaque {
                    from: open,
                    to: close,
                }],
                repeat: false,
            };
        }
        if delim != "(" && delim != "[" {
            return Expr::MacroCall {
                name,
                name_tok,
                args: Vec::new(),
                repeat: false,
            };
        }
        let open = self.i;
        let close = self.matching(open);
        self.bump();
        let mut args = Vec::new();
        let mut repeat = false;
        while self.i < close {
            let before = self.i;
            args.push(self.parse_expr(false));
            if self.i <= before {
                self.bump();
            }
            if self.i < close {
                if self.eat(";") {
                    repeat = true;
                } else if !self.eat(",") {
                    // Macro-only syntax (`$x:expr`, token trees): cover
                    // the rest of this argument opaquely.
                    let from = self.i;
                    while self.i < close && !self.at(",") && !self.at(";") {
                        match self.cur() {
                            "(" | "[" | "{" => self.i = self.matching(self.i) + 1,
                            _ => self.bump(),
                        }
                    }
                    if self.i > from {
                        args.push(Expr::Opaque {
                            from,
                            to: self.i - 1,
                        });
                    }
                    if self.eat(";") {
                        repeat = true;
                    } else {
                        self.eat(",");
                    }
                }
            }
        }
        self.i = close + 1;
        Expr::MacroCall {
            name,
            name_tok,
            args,
            repeat,
        }
    }

    /// Field value expressions of a struct literal whose `{` is at the
    /// cursor.
    fn parse_struct_lit_fields(&mut self) -> Vec<Expr> {
        let open = self.i;
        let close = self.matching(open);
        self.bump();
        let mut fields = Vec::new();
        while self.i < close {
            self.skip_attrs();
            if self.eat(",") {
                continue;
            }
            if self.at("..") {
                // Functional update `..base`.
                self.bump();
                if self.i < close {
                    fields.push(self.parse_expr(false));
                }
                continue;
            }
            if self.is_ident_at(self.i) && self.tok_text(self.i + 1) == ":" {
                self.bump();
                self.bump();
                fields.push(self.parse_expr(false));
            } else {
                // Shorthand `field,` — the field is a local by that name.
                let before = self.i;
                fields.push(self.parse_expr(false));
                if self.i <= before {
                    self.bump();
                }
            }
        }
        self.i = close + 1;
        fields
    }

    fn parse_if(&mut self) -> Expr {
        self.bump(); // if
        let cond = self.parse_expr(true);
        let then = if self.at("{") {
            self.parse_block()
        } else {
            Block {
                open: self.i,
                close: self.i,
                stmts: Vec::new(),
            }
        };
        let els = if self.at("else") {
            self.bump();
            if self.at("if") {
                Some(Box::new(self.parse_if()))
            } else if self.at("{") {
                Some(Box::new(Expr::Block(self.parse_block())))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            els,
        }
    }

    fn parse_match(&mut self) -> Expr {
        self.bump(); // match
        let head = self.parse_expr(true);
        if !self.at("{") {
            return Expr::Match {
                head: Box::new(head),
                arms: Vec::new(),
            };
        }
        let open = self.i;
        let close = self.matching(open);
        self.bump();
        let mut arms = Vec::new();
        while self.i < close {
            self.skip_attrs();
            if self.eat(",") {
                continue;
            }
            if self.i >= close {
                break;
            }
            let binds = self.pattern_binds(&["=>"]);
            if !self.eat("=>") {
                // Unparseable arm: skip to the next top-level comma.
                while self.i < close && !self.at(",") {
                    match self.cur() {
                        "(" | "[" | "{" => self.i = self.matching(self.i) + 1,
                        _ => self.bump(),
                    }
                }
                continue;
            }
            let before = self.i;
            let body = self.parse_expr(false);
            if self.i <= before {
                self.bump();
            }
            arms.push(Arm { binds, body });
        }
        self.i = close + 1;
        Expr::Match {
            head: Box::new(head),
            arms,
        }
    }

    fn parse_loop(&mut self) -> Expr {
        match self.cur() {
            "loop" => {
                self.bump();
                let body = self.parse_block();
                Expr::Loop {
                    kind: LoopKind::Loop,
                    binds: Vec::new(),
                    head: None,
                    body,
                }
            }
            "while" => {
                self.bump();
                let cond = self.parse_expr(true);
                let body = self.parse_block();
                Expr::Loop {
                    kind: LoopKind::While,
                    binds: Vec::new(),
                    head: Some(Box::new(cond)),
                    body,
                }
            }
            _ => {
                self.bump(); // for
                let binds = self.pattern_binds(&["in"]);
                self.eat("in");
                let iter = self.parse_expr(true);
                let body = self.parse_block();
                Expr::Loop {
                    kind: LoopKind::For,
                    binds,
                    head: Some(Box::new(iter)),
                    body,
                }
            }
        }
    }

    fn parse_closure(&mut self) -> Expr {
        let mut params = Vec::new();
        if self.eat("||") {
            // Zero parameters.
        } else if self.eat("|") {
            let open = self.i;
            let mut depth = 0usize;
            let mut j = open;
            // Find the closing `|` at bracket depth 0.
            while j < self.toks.len() {
                match self.tok_text(j) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    "|" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            params = self.param_idents(open, j);
            self.i = (j + 1).min(self.toks.len());
        }
        if self.at("->") {
            self.bump();
            let _ = self.consume_type();
        }
        let body = if self.at("{") {
            Expr::Block(self.parse_block())
        } else {
            self.parse_expr(false)
        };
        Expr::Closure {
            params,
            body: Box::new(body),
        }
    }

    /// Fallback: consume (balanced) to the end of the statement and
    /// return an opaque node over what was skipped.
    fn opaque_to_stmt_end(&mut self) -> Expr {
        let from = self.i;
        while !self.eof() {
            match self.cur() {
                ";" | "}" | "," | ")" | "]" => break,
                "(" | "[" | "{" => self.i = self.matching(self.i) + 1,
                _ => self.bump(),
            }
        }
        Expr::Opaque {
            from,
            to: self.i.saturating_sub(1).max(from),
        }
    }
}

/// Whether a `Path {` sequence should be read as a struct literal: the
/// head is qualified or names a type (uppercase first letter), or is
/// `Self`. A lowercase bare identifier before `{` is far more likely a
/// parse slip than a struct literal, and misreading it would swallow a
/// block.
fn struct_lit_head(segs: &[String]) -> bool {
    match segs.last() {
        Some(last) => {
            segs.len() > 1 || last.starts_with(|c: char| c.is_ascii_uppercase()) || last == "Self"
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileSyntax {
        let lexed = lex(src);
        parse(&lexed.tokens, src)
    }

    fn body<'s>(syntax: &'s FileSyntax, name: &str) -> &'s Block {
        syntax
            .fn_named(name)
            .unwrap_or_else(|| panic!("no fn {name}"))
            .body
            .as_ref()
            .unwrap()
    }

    /// Collect every method name in a function body.
    fn method_names(b: &Block) -> Vec<String> {
        let mut out = Vec::new();
        visit_block(b, &mut |e| {
            if let Expr::Method { name, .. } = e {
                out.push(name.clone());
            }
        });
        out
    }

    #[test]
    fn fn_items_params_and_lets() {
        let s = parse_src(
            "pub fn decode(buf: &[u8], mut limit: usize) -> Result<(), E> {\n\
             let rows = read(buf)?;\n\
             let (a, b): (u32, u32) = split(rows);\n\
             Ok(())\n\
             }\n",
        );
        assert_eq!(s.fns.len(), 1);
        let f = &s.fns[0];
        assert_eq!(f.name, "decode");
        assert_eq!(f.params, ["buf", "limit"]);
        let b = f.body.as_ref().unwrap();
        assert!(matches!(
            &b.stmts[0],
            Stmt::Let { binds, init: Some(_) } if binds == &["rows".to_string()]
        ));
        assert!(matches!(
            &b.stmts[1],
            Stmt::Let { binds, .. } if binds == &["a".to_string(), "b".to_string()]
        ));
    }

    #[test]
    fn nested_fns_and_impl_methods_are_collected() {
        let s = parse_src(
            "impl Codec {\n\
               fn outer(&self) { fn inner(x: usize) { x; } inner(1); }\n\
             }\n\
             mod m { pub fn in_mod() {} }\n",
        );
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "in_mod"]);
    }

    #[test]
    fn method_chains_resolve_receiver_and_args() {
        let s = parse_src("fn f(n: usize) { let v = n.checked_mul(4).map(go); }\n");
        let b = body(&s, "f");
        let Stmt::Let { init: Some(e), .. } = &b.stmts[0] else {
            panic!("expected let");
        };
        let Expr::Method {
            recv, name, args, ..
        } = e
        else {
            panic!("expected method, got {e:?}");
        };
        assert_eq!(name, "map");
        assert_eq!(args.len(), 1);
        let Expr::Method {
            recv: inner,
            name,
            args,
            ..
        } = recv.as_ref()
        else {
            panic!("expected inner method");
        };
        assert_eq!(name, "checked_mul");
        assert_eq!(args.len(), 1);
        assert!(matches!(inner.as_ref(), Expr::Path { segs, .. } if segs == &["n".to_string()]));
    }

    #[test]
    fn vec_macro_repeat_form() {
        let s = parse_src("fn f(n: usize) { let v = vec![0u8; n]; let w = vec![1, 2]; }\n");
        let b = body(&s, "f");
        let Stmt::Let {
            init: Some(Expr::MacroCall {
                name, args, repeat, ..
            }),
            ..
        } = &b.stmts[0]
        else {
            panic!("expected macro");
        };
        assert_eq!(name, "vec");
        assert!(repeat);
        assert_eq!(args.len(), 2);
        let Stmt::Let {
            init: Some(Expr::MacroCall { repeat, .. }),
            ..
        } = &b.stmts[1]
        else {
            panic!("expected macro");
        };
        assert!(!repeat);
    }

    #[test]
    fn if_condition_stops_at_block_despite_struct_ambiguity() {
        let s = parse_src("fn f(n: usize) { if n > limit { return; } n; }\n");
        let b = body(&s, "f");
        assert_eq!(b.stmts.len(), 2);
        let Stmt::Expr(Expr::If { cond, then, .. }) = &b.stmts[0] else {
            panic!("expected if, got {:?}", b.stmts[0]);
        };
        assert!(matches!(cond.as_ref(), Expr::Binary { op: ">", .. }));
        assert!(matches!(then.stmts[0], Stmt::Expr(Expr::Return { .. })));
    }

    #[test]
    fn struct_literals_in_expression_position() {
        let s = parse_src(
            "fn f(kind: u8, len: usize) -> Header { Header { kind, payload_len: len * 4 } }\n",
        );
        let b = body(&s, "f");
        let Stmt::Expr(Expr::StructLit { fields }) = &b.stmts[0] else {
            panic!("expected struct literal, got {:?}", b.stmts[0]);
        };
        assert_eq!(fields.len(), 2);
        assert!(matches!(&fields[1], Expr::Binary { op: "*", .. }));
    }

    #[test]
    fn turbofish_is_skipped() {
        let s = parse_src(
            "fn f(n: usize) { let v = Vec::<u8>::with_capacity(n); let c = it.collect::<Vec<_>>(); }\n",
        );
        let b = body(&s, "f");
        let Stmt::Let {
            init: Some(Expr::Call { callee, args }),
            ..
        } = &b.stmts[0]
        else {
            panic!("expected call, got {:?}", b.stmts[0]);
        };
        let Expr::Path { segs, .. } = callee.as_ref() else {
            panic!("expected path callee");
        };
        assert_eq!(segs, &["Vec".to_string(), "with_capacity".to_string()]);
        assert_eq!(args.len(), 1);
        assert_eq!(method_names(b), ["collect"]);
    }

    #[test]
    fn closures_nested_three_deep() {
        let s = parse_src(
            "fn f(items: Vec<usize>) {\n\
               let g = move |a: usize| items.iter().map(|b| (0..*b).map(|c| c + a));\n\
             }\n",
        );
        let b = body(&s, "f");
        let mut closures = 0;
        visit_block(b, &mut |e| {
            if matches!(e, Expr::Closure { .. }) {
                closures += 1;
            }
        });
        assert_eq!(closures, 3);
    }

    #[test]
    fn match_arms_capture_bindings_but_not_guard_locals() {
        let s = parse_src(
            "fn f(x: Option<usize>, cap: usize) -> usize {\n\
               match x { Some(n) if n < cap => n, None => 0, _ => 1 }\n\
             }\n",
        );
        let b = body(&s, "f");
        let Stmt::Expr(Expr::Match { arms, .. }) = &b.stmts[0] else {
            panic!("expected match");
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].binds, ["n"]);
        assert!(arms[1].binds.is_empty());
    }

    #[test]
    fn loops_and_labels() {
        let s = parse_src(
            "fn f(xs: &[usize]) {\n\
               'outer: loop { break 'outer; }\n\
               while running() { step(); }\n\
               for (i, x) in xs.iter().enumerate() { i; x; }\n\
             }\n",
        );
        let b = body(&s, "f");
        let kinds: Vec<LoopKind> = b
            .stmts
            .iter()
            .filter_map(|st| match st {
                Stmt::Expr(Expr::Loop { kind, .. }) => Some(kind),
                _ => None,
            })
            .copied()
            .collect();
        assert_eq!(kinds, [LoopKind::Loop, LoopKind::While, LoopKind::For]);
        let Stmt::Expr(Expr::Loop { binds, .. }) = &b.stmts[2] else {
            panic!();
        };
        assert_eq!(binds, &["i", "x"]);
    }

    #[test]
    fn macro_bodies_and_cfg_test_items_do_not_derail_parsing() {
        let s = parse_src(
            "macro_rules! gen { ($name:ident) => { fn $name() {} }; }\n\
             #[cfg(test)]\n\
             mod tests {\n\
               #[test]\n\
               fn check() { assert_eq!(1 + 1, 2); }\n\
             }\n\
             fn after() { work(); }\n",
        );
        // `fn $name` must not be mistaken for an item; `check` and
        // `after` must both be found.
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"check"), "{names:?}");
        assert!(names.contains(&"after"), "{names:?}");
    }

    #[test]
    fn let_else_and_if_let_bind() {
        let s = parse_src(
            "fn f(m: Option<usize>) {\n\
               let Some(n) = m else { return; };\n\
               if let Some(k) = m { k; }\n\
             }\n",
        );
        let b = body(&s, "f");
        let Stmt::Let { binds, .. } = &b.stmts[0] else {
            panic!();
        };
        assert_eq!(binds, &["n"]);
        let Stmt::Expr(Expr::If { cond, .. }) = &b.stmts[1] else {
            panic!("got {:?}", b.stmts[1]);
        };
        assert!(matches!(
            cond.as_ref(),
            Expr::LetCond { binds, .. } if binds == &["k".to_string()]
        ));
    }

    #[test]
    fn pathological_nesting_terminates_via_opaque() {
        // 300 nested parens exceed MAX_DEPTH; the parser must neither
        // overflow its stack nor loop.
        let mut src = String::from("fn f() { let x = ");
        src.push_str(&"(".repeat(300));
        src.push('1');
        src.push_str(&")".repeat(300));
        src.push_str("; }\n");
        let s = parse_src(&src);
        assert_eq!(s.fns.len(), 1);
        assert!(s.fns[0].body.is_some());
    }

    #[test]
    fn garbage_never_panics_and_always_finishes() {
        for src in [
            "fn f( {",
            "fn f() { let = = ; }",
            "fn f() { a.b.(c }",
            "fn f() { match { { } }",
            "impl } fn g() {}",
            "fn f() { x[..; }",
        ] {
            let _ = parse_src(src);
        }
    }

    #[test]
    fn assignment_and_compound_assignment() {
        let s = parse_src("fn f(mut n: usize, d: usize) { n = d + 1; n *= 4; self.at = n; }\n");
        let b = body(&s, "f");
        let ops: Vec<&str> = b
            .stmts
            .iter()
            .filter_map(|st| match st {
                Stmt::Expr(Expr::Binary { op, .. }) => Some(op),
                _ => None,
            })
            .copied()
            .collect();
        assert_eq!(ops, ["=", "*=", "="]);
    }
}
