//! Monte-Carlo evaluation benchmarks: variation-mask sampling throughput
//! and the cost of one deployment sample (the unit the paper repeats 250×).

use cn_analog::deployment::DeploymentMode;
use cn_analog::engine::{monte_carlo, AnalogBackend};
use cn_analog::montecarlo::McConfig;
use cn_data::synthetic_mnist;
use cn_nn::noise::sample_masks;
use cn_nn::zoo::{lenet5, LeNetConfig};
use cn_tensor::SeededRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_mask_sampling(c: &mut Criterion) {
    let model = lenet5(&LeNetConfig::mnist(1));
    let mut group = c.benchmark_group("variation_sampling");
    group.bench_function("lenet_weight_lognormal", |b| {
        let mut rng = SeededRng::new(2);
        b.iter(|| black_box(sample_masks(&model, 0.5, &mut rng)));
    });
    group.bench_function("lenet_conductance_masks", |b| {
        let mode = DeploymentMode::Conductance {
            spec: cn_analog::cell::CellSpec::typical(0.3),
            tile_size: 128,
        };
        let mut rng = SeededRng::new(3);
        b.iter(|| black_box(mode.sample_masks(&model, &mut rng)));
    });
    group.finish();
}

fn bench_mc_sample(c: &mut Criterion) {
    let data = synthetic_mnist(64, 64, 4);
    let model = lenet5(&LeNetConfig::mnist(5));
    // Grouped so the baseline taxonomy is uniformly group/id.
    let mut group = c.benchmark_group("mc_sample");
    group.bench_function("one_lenet_sample_64imgs", |b| {
        let backend = AnalogBackend::lognormal(0.5);
        b.iter(|| {
            black_box(monte_carlo(
                &model,
                &data.test,
                &McConfig::new(1, 0.5, 6),
                &backend,
            ))
        });
    });
    group.finish();
}

fn quick_criterion() -> Criterion {
    // CI-friendly budget: enough samples for stable medians on
    // these micro-kernels without multi-minute runs.
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_mask_sampling, bench_mc_sample
}
criterion_main!(benches);
