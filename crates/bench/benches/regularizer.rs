//! Lipschitz-regularizer benchmarks: the per-step cost of eq. (11) and
//! the power-iteration spectral-norm report.

use cn_nn::zoo::{lenet5, vgg16, LeNetConfig, VggConfig};
use cn_tensor::linalg::{orth_penalty, spectral_norm};
use cn_tensor::SeededRng;
use correctnet::lipschitz::LipschitzRegularizer;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_orth_penalty(c: &mut Criterion) {
    let mut group = c.benchmark_group("orth_penalty_grad");
    for (rows, cols) in [(16usize, 150usize), (64, 576), (120, 400)] {
        let mut rng = SeededRng::new(1);
        let w = rng.normal_tensor(&[rows, cols], 0.0, 0.1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &w,
            |b, w| {
                b.iter(|| black_box(orth_penalty(w, 0.34)));
            },
        );
    }
    group.finish();
}

fn bench_full_model_regularizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("regularizer_per_step");
    let mut lenet = lenet5(&LeNetConfig::mnist(1));
    let reg = LipschitzRegularizer::for_sigma(1e-3, 0.5);
    group.bench_function("lenet5", |b| {
        b.iter(|| black_box(reg.apply(&mut lenet)));
    });
    let mut vgg = vgg16(&VggConfig::quick(10, 2));
    group.bench_function("vgg16_w8", |b| {
        b.iter(|| black_box(reg.apply(&mut vgg)));
    });
    group.finish();
}

fn bench_spectral_norm(c: &mut Criterion) {
    let mut rng = SeededRng::new(3);
    let w = rng.normal_tensor(&[120, 400], 0.0, 0.1);
    let mut group = c.benchmark_group("spectral_norm_power_iteration");
    for iters in [10usize, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            b.iter(|| black_box(spectral_norm(&w, iters)));
        });
    }
    group.finish();
}

fn quick_criterion() -> Criterion {
    // CI-friendly budget: enough samples for stable medians on
    // these micro-kernels without multi-minute runs.
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_orth_penalty,
    bench_full_model_regularizer,
    bench_spectral_norm

}
criterion_main!(benches);
