//! Compensation-cost benchmarks backing Table I's "hardware cost is
//! negligible" claim: forward latency and MAC counts of compensated vs
//! plain models.

use cn_analog::energy::{analyze, CostModel};
use cn_data::synthetic_mnist;
use cn_nn::zoo::{lenet5, LeNetConfig};
use correctnet::compensation::{apply_compensation, CompensationPlan};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_forward_latency(c: &mut Criterion) {
    let data = synthetic_mnist(32, 32, 1);
    let (x, _) = data.test.gather(&(0..32).collect::<Vec<_>>());
    let base = lenet5(&LeNetConfig::mnist(2));
    let plan = CompensationPlan::uniform(&[0, 1], 0.5);
    let comp = apply_compensation(&base, &plan, 3);

    let mut group = c.benchmark_group("forward_latency_b32");
    group.bench_function("lenet_plain", |b| {
        let mut m = base.clone();
        b.iter(|| black_box(m.forward(&x, false)));
    });
    group.bench_function("lenet_compensated_2layers", |b| {
        let mut m = comp.clone();
        b.iter(|| black_box(m.forward(&x, false)));
    });
    group.finish();
}

fn bench_energy_analysis(c: &mut Criterion) {
    // Not a timing claim — prints the MAC/energy split once so the bench
    // log records the cost story, then times the analysis itself.
    let base = lenet5(&LeNetConfig::mnist(4));
    let plan = CompensationPlan::uniform(&[0, 1], 0.5);
    let mut comp = apply_compensation(&base, &plan, 5);
    let report = analyze(&mut comp, &[1, 28, 28], &CostModel::default());
    eprintln!(
        "[compensation energy] analog MACs {} | digital MACs {} | digital energy fraction {:.4}",
        report.analog_macs,
        report.digital_macs,
        report.digital_energy_fraction(&CostModel::default())
    );
    // Grouped so the baseline taxonomy is uniformly group/id.
    let mut group = c.benchmark_group("energy_analysis");
    group.bench_function("lenet", |b| {
        b.iter(|| black_box(analyze(&mut comp, &[1, 28, 28], &CostModel::default())));
    });
    group.finish();
}

fn quick_criterion() -> Criterion {
    // CI-friendly budget: enough samples for stable medians on
    // these micro-kernels without multi-minute runs.
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_forward_latency, bench_energy_analysis
}
criterion_main!(benches);
