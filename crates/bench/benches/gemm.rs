//! GEMM kernel benchmarks: the packed register-tiled driver against the
//! seed i-k-j kernel it replaced, swept over LeNet-5 / VGG-16 layer
//! shapes plus a square 512³ stress case.
//!
//! `CN_THREADS=1` is pinned before any kernel runs so the numbers reflect
//! single-thread throughput (the acceptance bar is ≥2× over the seed
//! kernel at 512³); the same sweep parallelizes identically on both
//! sides.

use cn_tensor::ops::{gemm_bias_act, Activation, Layout, PackedB};
use cn_tensor::{SeededRng, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// `(name, m, k, n)` — m is the im2col patch count (LeNet/VGG layers at
/// batch 1) or the batch size for dense heads.
const SHAPES: [(&str, usize, usize, usize); 8] = [
    // Single-request serving: the short-m (< MR) kernel path.
    ("vgg_fc_b1", 1, 512, 512),
    // LeNet-5 conv2 on MNIST: 10×10 patches, 6·5·5 patch len, 16 filters.
    ("lenet_conv2", 100, 150, 16),
    // LeNet-5 fc1 at batch 32: 32 × [400 → 120].
    ("lenet_fc1_b32", 32, 400, 120),
    // VGG-16 block1 conv on CIFAR: 32×32 patches, 3·3·3 → 64 filters.
    ("vgg_conv1", 1024, 27, 64),
    // VGG-16 block3 conv: 8×8 patches, 256·3·3 → 256 filters.
    ("vgg_conv3", 64, 2304, 256),
    // VGG dense head at batch 32: 32 × [512 → 512].
    ("vgg_fc_b32", 32, 512, 512),
    // Fast square case: the CI perf-smoke subset (`scripts/bench`).
    ("square256", 256, 256, 256),
    // Square stress case (the acceptance-criterion shape).
    ("square512", 512, 512, 512),
];

/// The pre-PR i-k-j kernel, verbatim single-threaded: the baseline the
/// packed driver is measured against (its outputs are bit-identical).
fn seed_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let c = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            let brow = &bd[kk * n..(kk + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                *cj += aik * bj;
            }
        }
    }
    out
}

fn operands(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = SeededRng::new(seed);
    (
        rng.normal_tensor(&[m, k], 0.0, 1.0),
        rng.normal_tensor(&[k, n], 0.0, 1.0),
    )
}

fn bench_seed_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_seed_ikj");
    for (name, m, k, n) in SHAPES {
        let (a, b) = operands(m, k, n, 1);
        group.bench_function(BenchmarkId::from_parameter(name), |bench| {
            bench.iter(|| black_box(seed_matmul(&a, &b)));
        });
    }
    group.finish();
}

fn bench_packed_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_packed");
    for (name, m, k, n) in SHAPES {
        let (a, b) = operands(m, k, n, 1);
        group.bench_function(BenchmarkId::from_parameter(name), |bench| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

/// The serving hot path: frozen weights packed once, bias+ReLU fused
/// into the writeback (`Dense`/`Conv2d` infer with pre-packed panels).
fn bench_prepacked_fused(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_prepacked_bias_relu");
    for (name, m, k, n) in SHAPES {
        let (a, w) = operands(m, k, n, 2);
        let bias = SeededRng::new(3).normal_tensor(&[n], 0.0, 1.0);
        let packed = PackedB::from_tensor(&w, Layout::RowMajor);
        group.bench_function(BenchmarkId::from_parameter(name), |bench| {
            bench.iter(|| {
                black_box(gemm_bias_act(
                    &a,
                    Layout::RowMajor,
                    &packed,
                    Some(&bias),
                    Activation::Relu,
                ))
            });
        });
    }
    group.finish();
}

fn quick_criterion() -> Criterion {
    // Pin the kernels to one worker before the thread count is first
    // cached; set CN_THREADS externally to observe parallel scaling.
    if std::env::var("CN_THREADS").is_err() {
        std::env::set_var("CN_THREADS", "1");
    }
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_seed_kernel, bench_packed_gemm, bench_prepacked_fused
}
criterion_main!(benches);
