//! Batched session-inference benchmarks for the compile/execute engine:
//! one compiled LeNet deployment, steady-state `logits_batch` latency
//! across serving batch sizes, against the legacy mutate-in-place forward.

use cn_analog::engine::{AnalogBackend, EngineBuilder, Session};
use cn_nn::zoo::{lenet5, LeNetConfig};
use cn_tensor::{SeededRng, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const BATCH_SIZES: [usize; 3] = [1, 32, 256];

fn batch(rng: &mut SeededRng, n: usize) -> Tensor {
    rng.normal_tensor(&[n, 1, 28, 28], 0.0, 1.0)
}

fn bench_session_forward(c: &mut Criterion) {
    let model = lenet5(&LeNetConfig::mnist(1));
    let compiled = EngineBuilder::new(&model)
        .backend(AnalogBackend::lognormal(0.5))
        .seed(2)
        .compile()
        .shared();
    let mut rng = SeededRng::new(3);
    let mut group = c.benchmark_group("engine_session_logits");
    for n in BATCH_SIZES {
        let x = batch(&mut rng, n);
        let mut session = Session::new(compiled.clone());
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| black_box(session.logits_batch(&x)));
        });
    }
    group.finish();
}

fn bench_legacy_forward(c: &mut Criterion) {
    // Reference point: the historic mutate-in-place eval forward (per-call
    // effective-weight materialization on every analog layer).
    let model = lenet5(&LeNetConfig::mnist(4));
    let mut noisy = model.clone();
    cn_nn::noise::apply_lognormal(&mut noisy, 0.5, &mut SeededRng::new(5));
    let mut rng = SeededRng::new(6);
    let mut group = c.benchmark_group("legacy_masked_forward");
    for n in BATCH_SIZES {
        let x = batch(&mut rng, n);
        let mut m = noisy.clone();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| black_box(m.forward(&x, false)));
        });
    }
    group.finish();
}

fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_session_forward, bench_legacy_forward
}
criterion_main!(benches);
