//! Neural-network kernel benchmarks: matmul, conv2d forward/backward at
//! the shapes the experiments actually run.

use cn_nn::layers::Conv2d;
use cn_nn::Layer;
use cn_tensor::SeededRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for size in [64usize, 128, 256] {
        let mut rng = SeededRng::new(1);
        let a = rng.normal_tensor(&[size, size], 0.0, 1.0);
        let b_m = rng.normal_tensor(&[size, size], 0.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b_m)));
        });
    }
    group.finish();
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_forward");
    // LeNet conv1 on MNIST and a VGG-style 3×3 block.
    let mut rng = SeededRng::new(2);
    let mut lenet_conv = Conv2d::new(1, 6, 5, 1, 2, &mut rng);
    let mnist_x = rng.normal_tensor(&[8, 1, 28, 28], 0.0, 1.0);
    group.bench_function("lenet_conv1_b8", |b| {
        b.iter(|| black_box(lenet_conv.forward(&mnist_x, false)));
    });
    let mut vgg_conv = Conv2d::new(32, 32, 3, 1, 1, &mut rng);
    let cifar_x = rng.normal_tensor(&[8, 32, 16, 16], 0.0, 1.0);
    group.bench_function("vgg_conv3x3_32c_b8", |b| {
        b.iter(|| black_box(vgg_conv.forward(&cifar_x, false)));
    });
    group.finish();
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut rng = SeededRng::new(3);
    let mut conv = Conv2d::new(16, 16, 3, 1, 1, &mut rng);
    let x = rng.normal_tensor(&[8, 16, 16, 16], 0.0, 1.0);
    let y = conv.forward(&x, true);
    let g = rng.normal_tensor(y.dims(), 0.0, 1.0);
    // Grouped so the baseline taxonomy is uniformly group/id.
    let mut group = c.benchmark_group("conv2d_train");
    group.bench_function("fwd_bwd_16c_b8", |b| {
        b.iter(|| {
            let _ = conv.forward(&x, true);
            black_box(conv.backward(&g))
        });
    });
    group.finish();
}

fn bench_noise_mask_application(c: &mut Criterion) {
    // The cost the variation model adds to every noisy forward pass.
    let mut rng = SeededRng::new(4);
    let mut conv = Conv2d::new(32, 32, 3, 1, 1, &mut rng);
    let x = rng.normal_tensor(&[8, 32, 8, 8], 0.0, 1.0);
    let mask = rng.lognormal_mask(&[32, 32, 3, 3], 0.5);
    let mut group = c.benchmark_group("noise_overhead");
    group.bench_function("forward_clean", |b| {
        b.iter(|| black_box(conv.forward(&x, false)));
    });
    group.bench_function("forward_masked", |b| {
        conv.set_noise(Some(mask.clone()));
        b.iter(|| black_box(conv.forward(&x, false)));
    });
    group.finish();
}

fn quick_criterion() -> Criterion {
    // CI-friendly budget: enough samples for stable medians on
    // these micro-kernels without multi-minute runs.
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_matmul,
    bench_conv_forward,
    bench_conv_backward,
    bench_noise_mask_application

}
criterion_main!(benches);
