//! Crossbar substrate benchmarks: analog MAC throughput vs array size,
//! tiled vs monolithic arrays, and programming cost.

use cn_analog::cell::CellSpec;
use cn_analog::{Crossbar, TiledCrossbar};
use cn_tensor::SeededRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_mac_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_mac");
    for size in [32usize, 64, 128] {
        let mut rng = SeededRng::new(1);
        let w = rng.normal_tensor(&[size, size], 0.0, 1.0);
        let x = rng.normal_tensor(&[size], 0.0, 1.0);
        let xbar = Crossbar::program(&w, CellSpec::ideal(1.0, 100.0), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let mut mac_rng = SeededRng::new(2);
            b.iter(|| black_box(xbar.mac(&x, &mut mac_rng)));
        });
    }
    group.finish();
}

fn bench_mac_with_read_noise(c: &mut Criterion) {
    let mut rng = SeededRng::new(3);
    let w = rng.normal_tensor(&[64, 64], 0.0, 1.0);
    let x = rng.normal_tensor(&[64], 0.0, 1.0);
    let ideal = Crossbar::program(&w, CellSpec::ideal(1.0, 100.0), &mut rng);
    let noisy_spec = CellSpec {
        read_sigma: 0.05,
        ..CellSpec::ideal(1.0, 100.0)
    };
    let noisy = Crossbar::program(&w, noisy_spec, &mut rng);
    let mut group = c.benchmark_group("crossbar_read_noise");
    group.bench_function("ideal_read", |b| {
        let mut r = SeededRng::new(4);
        b.iter(|| black_box(ideal.mac(&x, &mut r)));
    });
    group.bench_function("noisy_read", |b| {
        let mut r = SeededRng::new(4);
        b.iter(|| black_box(noisy.mac(&x, &mut r)));
    });
    group.finish();
}

fn bench_tiled_vs_monolithic(c: &mut Criterion) {
    let mut rng = SeededRng::new(5);
    let w = rng.normal_tensor(&[256, 256], 0.0, 1.0);
    let x = rng.normal_tensor(&[256], 0.0, 1.0);
    let mono = Crossbar::program(&w, CellSpec::ideal(1.0, 100.0), &mut rng);
    let tiled = TiledCrossbar::program(&w, 128, CellSpec::ideal(1.0, 100.0), &mut rng);
    let mut group = c.benchmark_group("tiled_vs_monolithic_256");
    group.bench_function("monolithic", |b| {
        let mut r = SeededRng::new(6);
        b.iter(|| black_box(mono.mac(&x, &mut r)));
    });
    group.bench_function("tiled_128", |b| {
        let mut r = SeededRng::new(6);
        b.iter(|| black_box(tiled.mac(&x, &mut r)));
    });
    group.finish();
}

fn bench_programming(c: &mut Criterion) {
    let mut rng = SeededRng::new(7);
    let w = rng.normal_tensor(&[128, 128], 0.0, 1.0);
    // Grouped so the baseline taxonomy is uniformly group/id.
    let mut group = c.benchmark_group("crossbar_program");
    group.bench_function("128x128_with_variation", |b| {
        let mut r = SeededRng::new(8);
        b.iter(|| black_box(Crossbar::program(&w, CellSpec::typical(0.3), &mut r)));
    });
    group.finish();
}

fn quick_criterion() -> Criterion {
    // CI-friendly budget: enough samples for stable medians on
    // these micro-kernels without multi-minute runs.
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_mac_sizes,
    bench_mac_with_read_noise,
    bench_tiled_vs_monolithic,
    bench_programming

}
criterion_main!(benches);
