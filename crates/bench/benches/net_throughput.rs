//! End-to-end TCP serving benchmark: a loopback [`cn_net::Frontend`]
//! over a digital shard router, driven by the cn-net closed-loop load
//! generator. One iteration = [`REQUESTS_PER_ITER`] framed requests over
//! real sockets, so the reported ns/iter divided by that count is the
//! steady-state wire-to-wire service time — codec, kernel TCP, admission
//! queue and batcher included. The `shards` axis isolates what
//! pick-two-least-loaded routing costs over a single shard (and, on a
//! multi-core host, what parallel shards buy).

use cn_analog::engine::DigitalBackend;
use cn_net::{Frontend, FrontendConfig, LoadgenConfig, Mode, RouterConfig, ShardRouter};
use cn_serve::ServeConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const SHARDS: [usize; 2] = [1, 4];
const CONNECTIONS: usize = 4;
const WINDOW: usize = 8;
const REQUESTS_PER_ITER: usize = 256;
const SAMPLE_DIMS: [usize; 1] = [32];

/// The served model: a mid-sized MLP with enough per-row compute that
/// the wire numbers mix real inference with framing cost, not framing
/// alone.
fn edge_model() -> cn_nn::Sequential {
    cn_nn::zoo::mlp(&[32, 256, 256, 10], 1)
}

fn bench_net_throughput(c: &mut Criterion) {
    let model = edge_model();
    let mut group = c.benchmark_group("net_throughput_256_requests");
    for shards in SHARDS {
        let serve = ServeConfig::new(8)
            .max_wait(Duration::from_micros(200))
            .workers(2);
        let router = Arc::new(ShardRouter::new(
            &model,
            DigitalBackend,
            shards,
            7,
            &SAMPLE_DIMS,
            &RouterConfig::new(serve),
        ));
        let frontend = Frontend::bind(
            "127.0.0.1:0",
            Arc::clone(&router),
            FrontendConfig::default()
                .handlers(CONNECTIONS)
                .read_timeout(Duration::from_micros(200)),
        )
        .expect("bind loopback frontend");
        let addr = frontend.local_addr();
        let mut load = LoadgenConfig::new(&SAMPLE_DIMS);
        load.connections = CONNECTIONS;
        load.requests = REQUESTS_PER_ITER;
        load.batch_rows = 2;
        load.mode = Mode::Closed { window: WINDOW };
        load.seed = 42;
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| {
                let report = cn_net::loadgen::run(addr, &load).expect("loadgen run");
                assert_eq!(
                    report.completed, REQUESTS_PER_ITER as u64,
                    "bench load run dropped replies: {report:?}"
                );
                black_box(report.throughput_rps)
            });
        });
        frontend.drain();
        let joined = frontend.join();
        drop(router);
        match Arc::try_unwrap(joined) {
            Ok(router) => router.shutdown(),
            Err(_) => unreachable!("all frontend threads exited"),
        }
    }
    group.finish();
}

fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_net_throughput
}
criterion_main!(benches);
