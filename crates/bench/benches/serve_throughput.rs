//! Load-generator benchmark of the dynamic-batching serving layer: a
//! round-robin fleet of two analog MLP-head deployments, driven by eight
//! client threads. One iteration = 512 served requests, so the reported
//! ns/iter divided by 512 is the steady-state per-request service time;
//! `max_batch = 1` is the no-batching baseline the coalescing
//! configurations are measured against.

use cn_analog::engine::AnalogBackend;
use cn_serve::{Fleet, RoutePolicy, ServeConfig, ServeError, Ticket};
use cn_tensor::{SeededRng, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::VecDeque;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const MAX_BATCHES: [usize; 3] = [1, 8, 32];
const CLIENTS: usize = 8;
const WINDOW: usize = 32;
const REQUESTS_PER_ITER: usize = 512;

/// Pipelined load generator: each client keeps up to [`WINDOW`] tickets
/// in flight so the batchers have requests to coalesce; `QueueFull` is
/// backpressure (drain one reply, retry).
fn drive(fleet: &Fleet, samples: &[Tensor]) -> usize {
    let next = AtomicUsize::new(0);
    let served = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| {
                let mut inflight: VecDeque<Ticket> = VecDeque::new();
                let drain = |inflight: &mut VecDeque<Ticket>| {
                    if let Some(ticket) = inflight.pop_front() {
                        black_box(ticket.wait().expect("worker reply").class);
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                };
                let mut exhausted = false;
                while !exhausted || !inflight.is_empty() {
                    while !exhausted && inflight.len() < WINDOW {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= REQUESTS_PER_ITER {
                            exhausted = true;
                            break;
                        }
                        let ticket = loop {
                            match fleet.submit_next(&samples[i % samples.len()]) {
                                Ok(ticket) => break ticket,
                                Err(ServeError::QueueFull) => {
                                    drain(&mut inflight);
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("bench load generator failed: {e}"),
                            }
                        };
                        inflight.push_back(ticket);
                    }
                    drain(&mut inflight);
                }
            });
        }
    });
    served.load(Ordering::Relaxed)
}

/// The served model: an edge-sized MLP head whose per-sample compute is
/// small enough that per-request overhead (wakeups, locks, scatter) is a
/// visible cost — the regime micro-batching amortizes. A conv LeNet's
/// multi-millisecond per-sample compute swamps that overhead and shows
/// batching parity instead (see `engine_forward` for its kernel costs).
fn mlp_head() -> cn_nn::Sequential {
    use cn_nn::layers::{Dense, Flatten, Relu};
    let mut rng = SeededRng::new(1);
    cn_nn::Sequential::new(vec![
        Box::new(Flatten::new()),
        Box::new(Dense::new(784, 48, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(48, 10, &mut rng)),
    ])
}

fn bench_serve_throughput(c: &mut Criterion) {
    let model = mlp_head();
    let mut rng = SeededRng::new(2);
    let samples: Vec<Tensor> = (0..32)
        .map(|_| rng.normal_tensor(&[1, 28, 28], 0.0, 1.0))
        .collect();
    let mut group = c.benchmark_group("serve_throughput_512_requests");
    for max_batch in MAX_BATCHES {
        let config = ServeConfig::new(max_batch)
            .max_wait(Duration::from_millis(2))
            .workers(2)
            .queue_capacity(64 * max_batch);
        let fleet = Fleet::new(
            &model,
            AnalogBackend::lognormal(0.3),
            2,
            7,
            RoutePolicy::RoundRobin,
            &[1, 28, 28],
            &config,
        );
        group.bench_function(BenchmarkId::new("max_batch", max_batch), |b| {
            b.iter(|| black_box(drive(&fleet, &samples)));
        });
        fleet.shutdown();
    }
    group.finish();
}

fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_serve_throughput
}
criterion_main!(benches);
