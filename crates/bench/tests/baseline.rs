//! Baseline schema, compare-statistics and `cn-benchcmp` gate tests.
//!
//! Three layers:
//!
//! - in-memory schema round-trips plus named-error rejection of corrupt
//!   baselines (mirroring the `.cnm` cache's corrupt-entry tests),
//! - property tests over the statistical gate (symmetry, permutation
//!   invariance, threshold monotonicity),
//! - the pinned fixture pair under `tests/fixtures/` driven through the
//!   real `cn-benchcmp` binary, asserting exit codes and both human and
//!   JSON diagnostics.

use cn_bench::baseline::compare::{compare, judge, CompareConfig, Verdict};
use cn_bench::baseline::{Baseline, BaselineError, BenchRecord, HostFingerprint};
use correctnet::export::json::Json;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn record(id: &str, samples: &[f64]) -> BenchRecord {
    BenchRecord {
        workspace: "cn-bench".to_string(),
        bench: "gemm".to_string(),
        group: "gemm_packed".to_string(),
        id: id.to_string(),
        iters_per_sample: 4,
        samples_ns: samples.to_vec(),
    }
}

fn baseline(name: &str, benchmarks: Vec<BenchRecord>) -> Baseline {
    Baseline {
        name: name.to_string(),
        created_unix: 1_754_500_000,
        git_rev: "abc1234".to_string(),
        host: HostFingerprint {
            hostname: "test".to_string(),
            os: "linux".to_string(),
            arch: "x86_64".to_string(),
            cpus: 4,
        },
        benchmarks,
    }
}

// ---------------------------------------------------------------- schema

#[test]
fn baseline_round_trips_through_json() {
    let b = baseline(
        "rt",
        vec![
            record("square256", &[1.0, 2.5, 3.25]),
            record("square512", &[1e6, 2e6]),
        ],
    );
    let parsed = Json::parse(&b.render()).expect("rendered baseline parses");
    assert_eq!(Baseline::from_json(&parsed).expect("schema round-trip"), b);
}

#[test]
fn fixture_files_parse() {
    for name in [
        "BENCH_fixture_base.json",
        "BENCH_fixture_equal.json",
        "BENCH_fixture_regressed.json",
    ] {
        let b = Baseline::load(&fixture(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!b.benchmarks.is_empty(), "{name} holds benchmarks");
    }
}

#[test]
fn missing_file_is_io_error() {
    let err = Baseline::load(&fixture("BENCH_does_not_exist.json")).unwrap_err();
    assert!(matches!(err, BaselineError::Io { .. }), "{err}");
}

#[test]
fn corrupt_baselines_are_rejected_with_named_errors() {
    let good = baseline("good", vec![record("sq", &[1.0, 2.0])]).to_json();

    // Not JSON at all.
    assert!(matches!(
        Json::parse("{ nope").map_err(|e| BaselineError::Parse {
            detail: e.to_string()
        }),
        Err(BaselineError::Parse { .. })
    ));

    // Each required top-level field, removed in turn.
    for field in [
        "schema_version",
        "kind",
        "name",
        "created_unix",
        "git_rev",
        "host",
        "benchmarks",
    ] {
        let Json::Obj(members) = good.clone() else {
            unreachable!()
        };
        let stripped = Json::Obj(members.into_iter().filter(|(k, _)| k != field).collect());
        let err = Baseline::from_json(&stripped).unwrap_err();
        assert!(
            matches!(err, BaselineError::MissingField { .. }),
            "dropping `{field}` must be MissingField, got {err}"
        );
        assert!(
            err.to_string().contains(field),
            "error names `{field}`: {err}"
        );
    }

    // Future schema versions and foreign kinds are refused, not guessed at.
    let mut future = baseline("future", vec![record("sq", &[1.0])]).to_json();
    if let Json::Obj(members) = &mut future {
        members[0].1 = Json::num(99.0);
    }
    assert!(matches!(
        Baseline::from_json(&future).unwrap_err(),
        BaselineError::UnsupportedSchema { .. }
    ));

    let mut wrong_kind = baseline("kind", vec![record("sq", &[1.0])]).to_json();
    if let Json::Obj(members) = &mut wrong_kind {
        members[1].1 = Json::str("experiment-report");
    }
    assert!(matches!(
        Baseline::from_json(&wrong_kind).unwrap_err(),
        BaselineError::UnsupportedSchema { .. }
    ));

    // A benchmark with an empty sample vector is useless for the gate.
    let empty = baseline("empty", vec![record("sq", &[])]).to_json();
    let err = Baseline::from_json(&empty).unwrap_err();
    assert!(matches!(err, BaselineError::BadField { .. }), "{err}");
    assert!(err.to_string().contains("samples_ns"), "{err}");

    // A non-numeric sample is a type error, located by index.
    let mut bad_sample = baseline("bad", vec![record("sq", &[1.0, 2.0])]).to_json();
    if let Some(Json::Obj(members)) = bad_sample
        .get("benchmarks")
        .and_then(|b| b.as_arr())
        .map(|a| a[0].clone())
    {
        let fixed: Vec<(String, Json)> = members
            .into_iter()
            .map(|(k, v)| {
                if k == "samples_ns" {
                    (k, Json::arr([Json::num(1.0), Json::str("fast")]))
                } else {
                    (k, v)
                }
            })
            .collect();
        if let Json::Obj(top) = &mut bad_sample {
            for (k, v) in top.iter_mut() {
                if k == "benchmarks" {
                    *v = Json::arr([Json::Obj(fixed.clone())]);
                }
            }
        }
    }
    let err = Baseline::from_json(&bad_sample).unwrap_err();
    assert!(matches!(err, BaselineError::BadField { .. }), "{err}");
    assert!(err.to_string().contains("samples_ns[1]"), "{err}");
}

// ------------------------------------------------------- gate statistics

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A baseline compared against itself never regresses (nor improves):
    /// the rank statistic sits at exactly 0.5 and the mean delta at 0.
    fn self_compare_never_regresses(raw in proptest::collection::vec(1u64..1_000_000, 1..24)) {
        let samples: Vec<f64> = raw.iter().map(|&v| v as f64).collect();
        let r = record("self", &samples);
        let c = judge(&r, &r, &CompareConfig::default());
        prop_assert_eq!(c.verdict, Verdict::Unchanged);
        prop_assert_eq!(c.rel_delta, 0.0);
        prop_assert_eq!(c.effect, 0.5);
    }

    /// The gate depends only on the sample *sets*: rotating either
    /// vector changes nothing (integer-valued samples keep the mean sum
    /// exact under reordering).
    fn gate_is_permutation_invariant(
        old_raw in proptest::collection::vec(1u64..1_000_000, 2..16),
        new_raw in proptest::collection::vec(1u64..1_000_000, 2..16),
        rot in 0usize..16,
    ) {
        let old: Vec<f64> = old_raw.iter().map(|&v| v as f64).collect();
        let new: Vec<f64> = new_raw.iter().map(|&v| v as f64).collect();
        let mut rotated = new.clone();
        let split = rot % rotated.len();
        rotated.rotate_left(split);
        let config = CompareConfig::default();
        let direct = judge(&record("p", &old), &record("p", &new), &config);
        let shuffled = judge(&record("p", &old), &record("p", &rotated), &config);
        prop_assert_eq!(direct.verdict, shuffled.verdict);
        prop_assert_eq!(direct.effect, shuffled.effect);
        prop_assert_eq!(direct.rel_delta, shuffled.rel_delta);
    }

    /// Tightening the threshold can only find **more** regressions: if a
    /// benchmark regresses at threshold `t`, it regresses at any `t' < t`.
    fn regression_is_monotone_in_threshold(
        old_raw in proptest::collection::vec(1u64..1_000_000, 2..16),
        new_raw in proptest::collection::vec(1u64..1_000_000, 2..16),
        t_lo_pct in 1u64..100,
        t_hi_pct in 1u64..100,
    ) {
        prop_assume!(t_lo_pct < t_hi_pct);
        let old: Vec<f64> = old_raw.iter().map(|&v| v as f64).collect();
        let new: Vec<f64> = new_raw.iter().map(|&v| v as f64).collect();
        let loose = CompareConfig { threshold: t_hi_pct as f64 / 100.0, ..CompareConfig::default() };
        let tight = CompareConfig { threshold: t_lo_pct as f64 / 100.0, ..CompareConfig::default() };
        let at_hi = judge(&record("m", &old), &record("m", &new), &loose);
        let at_lo = judge(&record("m", &old), &record("m", &new), &tight);
        if at_hi.verdict == Verdict::Regressed {
            prop_assert_eq!(at_lo.verdict, Verdict::Regressed);
        }
    }
}

#[test]
fn compare_reports_added_and_removed_benchmarks() {
    let old = baseline(
        "old",
        vec![record("kept", &[1.0, 2.0]), record("dropped", &[1.0, 2.0])],
    );
    let new = baseline(
        "new",
        vec![record("kept", &[1.0, 2.0]), record("added", &[1.0, 2.0])],
    );
    let report = compare(&old, &new, &CompareConfig::default());
    assert_eq!(report.comparisons.len(), 1);
    assert_eq!(
        report.only_in_baseline,
        vec!["cn-bench/gemm/gemm_packed/dropped".to_string()]
    );
    assert_eq!(
        report.only_in_candidate,
        vec!["cn-bench/gemm/gemm_packed/added".to_string()]
    );
    assert!(!report.has_regressions());
    // Mismatches appear in both renderings — never silently dropped.
    let human = report.render_human();
    assert!(
        human.contains("removed     cn-bench/gemm/gemm_packed/dropped"),
        "{human}"
    );
    assert!(
        human.contains("added       cn-bench/gemm/gemm_packed/added"),
        "{human}"
    );
    let json = report.to_json();
    assert_eq!(
        json.get("only_in_baseline")
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        1
    );
    assert_eq!(
        json.get("only_in_candidate")
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn compare_flags_host_mismatch() {
    let old = baseline("old", vec![record("sq", &[1.0, 2.0])]);
    let mut new = baseline("new", vec![record("sq", &[1.0, 2.0])]);
    new.host.hostname = "elsewhere".to_string();
    let report = compare(&old, &new, &CompareConfig::default());
    assert!(report.host_mismatch);
    assert!(report.render_human().contains("different hosts"));
}

// --------------------------------------------------- cn-benchcmp binary

fn benchcmp(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cn-benchcmp"))
        .args(args)
        .output()
        .expect("cn-benchcmp runs")
}

#[test]
fn equal_fixture_pair_passes_the_gate() {
    let base = fixture("BENCH_fixture_base.json");
    let equal = fixture("BENCH_fixture_equal.json");
    let out = benchcmp(&["compare", base.to_str().unwrap(), equal.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("unchanged"), "{stdout}");
    assert!(stdout.contains("3 compared, 0 regressed"), "{stdout}");
}

#[test]
fn regressed_fixture_fails_and_names_the_benchmark_in_human_output() {
    let base = fixture("BENCH_fixture_base.json");
    let bad = fixture("BENCH_fixture_regressed.json");
    let out = benchcmp(&["compare", base.to_str().unwrap(), bad.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    // The ~2× slowdown is named with its verdict...
    assert!(
        stdout.contains("regressed   cn-bench/gemm/gemm_packed/square256"),
        "{stdout}"
    );
    // ...the unchanged benchmark is not gated...
    assert!(
        stdout.contains("unchanged   cn-bench/engine_forward"),
        "{stdout}"
    );
    // ...and the id mismatches are reported, not dropped.
    assert!(
        stdout.contains("removed     cn-bench/serve_throughput"),
        "{stdout}"
    );
    assert!(
        stdout.contains("added       cn-bench/gemm/gemm_packed/square320"),
        "{stdout}"
    );
}

#[test]
fn regressed_fixture_fails_and_names_the_benchmark_in_json_output() {
    let base = fixture("BENCH_fixture_base.json");
    let bad = fixture("BENCH_fixture_regressed.json");
    let out = benchcmp(&[
        "compare",
        base.to_str().unwrap(),
        bad.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let json = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("JSON output parses");
    assert_eq!(json.get("regressed").and_then(Json::as_bool), Some(true));
    let comparisons = json.get("comparisons").unwrap().as_arr().unwrap();
    let square256 = comparisons
        .iter()
        .find(|c| c.get("id").and_then(Json::as_str) == Some("cn-bench/gemm/gemm_packed/square256"))
        .expect("regressed benchmark present in JSON");
    assert_eq!(
        square256.get("verdict").and_then(Json::as_str),
        Some("regressed")
    );
    let delta = square256.get("rel_delta").and_then(Json::as_f64).unwrap();
    assert!(delta > 0.9 && delta < 1.1, "≈2× slowdown, got {delta}");
    assert_eq!(
        json.get("only_in_baseline")
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn generous_threshold_lets_the_regressed_fixture_pass() {
    let base = fixture("BENCH_fixture_base.json");
    let bad = fixture("BENCH_fixture_regressed.json");
    let out = benchcmp(&[
        "compare",
        base.to_str().unwrap(),
        bad.to_str().unwrap(),
        "--threshold",
        "1.5",
    ]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn corrupt_baseline_is_a_usage_error_not_a_crash() {
    let dir = std::env::temp_dir().join("cn_benchcmp_corrupt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_corrupt.json");
    std::fs::write(&path, "{ \"schema_version\": 1 ").unwrap();
    let base = fixture("BENCH_fixture_base.json");
    let out = benchcmp(&["compare", base.to_str().unwrap(), path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not valid JSON"), "{stderr}");
}

/// End-to-end `save` → `compare` over the JSONL feed the criterion shim
/// emits: saving a run and comparing it against itself exits 0 (the
/// `scripts/bench save && scripts/bench compare` acceptance flow),
/// while a synthetic 2× slowdown in one benchmark flips the gate.
#[test]
fn save_then_self_compare_is_clean_and_synthetic_slowdown_fails() {
    let dir = std::env::temp_dir().join("cn_benchcmp_save_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let feed = "\
{\"bin\":\"gemm\",\"label\":\"gemm_packed/square256\",\"warm_up_iters\":10,\"iters_per_sample\":4,\"samples_ns\":[700000,701000,699000,700500,698500]}\n\
{\"bin\":\"serve_throughput\",\"label\":\"serve_throughput_512_requests/max_batch/32\",\"warm_up_iters\":5,\"iters_per_sample\":2,\"samples_ns\":[3700000,3710000,3695000,3705000,3698000]}\n";
    let jsonl = dir.join("run.jsonl");
    std::fs::write(&jsonl, feed).unwrap();

    let out = benchcmp(&[
        "save",
        "--name",
        "seedtest",
        "--jsonl",
        jsonl.to_str().unwrap(),
        "--dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let saved = dir.join("BENCH_seedtest.json");
    let parsed = Baseline::load(&saved).expect("saved baseline loads");
    assert_eq!(parsed.benchmarks.len(), 2);

    // Unchanged tree: the run gates cleanly against itself.
    let out = benchcmp(&[
        "compare",
        "seedtest",
        "seedtest",
        "--dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));

    // Inject a synthetic 2× slowdown into one benchmark and re-save.
    let slowed = feed.replace(
        "[700000,701000,699000,700500,698500]",
        "[1400000,1402000,1398000,1401000,1397000]",
    );
    std::fs::write(&jsonl, slowed).unwrap();
    let out = benchcmp(&[
        "save",
        "--name",
        "slow",
        "--jsonl",
        jsonl.to_str().unwrap(),
        "--dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let out = benchcmp(&[
        "compare",
        "seedtest",
        "slow",
        "--dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("regressed   cn-bench/gemm/gemm_packed/square256"),
        "{stdout}"
    );
}
