//! Integration tests of the experiment subsystem: registry resolution,
//! report-schema round-trips and the trained-model cache.

use cn_bench::cache::{ModelCache, ModelKey};
use cn_bench::experiments::{self, Ctx};
use cn_bench::report::ExperimentReport;
use cn_bench::Scale;
use cn_data::synthetic_mnist;
use cn_nn::metrics::evaluate;
use cn_nn::optim::Adam;
use cn_nn::trainer::{TrainConfig, Trainer};
use cn_nn::zoo::{lenet5, LeNetConfig};
use cn_nn::Sequential;
use correctnet::export::json::Json;

const EXPECTED: [&str; 11] = [
    "table1",
    "fig2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablation_device",
    "ablation_lipschitz",
    "serving",
    "net_serving",
    "alloc_profile",
];

fn temp_cache(tag: &str) -> ModelCache {
    let dir = std::env::temp_dir().join(format!("cn_bench_test_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    ModelCache::new(dir)
}

#[test]
fn every_registered_name_resolves() {
    let names = experiments::names();
    assert_eq!(
        names, EXPECTED,
        "catalog must list the eight paper artifacts plus the serving and alloc-profile workloads"
    );
    for name in names {
        let exp = experiments::find(name).unwrap_or_else(|| panic!("`{name}` must resolve"));
        assert_eq!(exp.name(), name);
        assert!(!exp.title().is_empty(), "{name} needs a title");
        assert!(!exp.description().is_empty(), "{name} needs a description");
    }
    assert!(experiments::find("fig11").is_none());
}

#[test]
fn registry_names_are_unique() {
    let mut names = experiments::names();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), EXPECTED.len());
}

#[test]
fn report_skeleton_configs_roundtrip_through_json() {
    let cache = temp_cache("skeleton");
    let ctx = Ctx::new(Scale::Quick, 0x5eed, &cache);
    for exp in experiments::registry() {
        let report = ctx.report(exp.as_ref());
        let text = report.to_json().render_pretty();
        let back = ExperimentReport::from_json(&Json::parse(&text).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", exp.name()));
        assert_eq!(back, report, "{} skeleton must round-trip", exp.name());
        assert_eq!(back.experiment, exp.name());
        assert_eq!(back.scale, "quick");
        // The shared config knobs are present and typed.
        assert_eq!(
            back.config
                .iter()
                .find(|(k, _)| k == "scale")
                .map(|(_, v)| v.as_str()),
            Some(Some("quick"))
        );
        assert_eq!(
            back.config
                .iter()
                .find(|(k, _)| k == "mc_samples")
                .and_then(|(_, v)| v.as_f64()),
            Some(Scale::Quick.mc_samples() as f64)
        );
    }
}

fn tiny_key() -> ModelKey {
    ModelKey {
        arch: "lenet_mnist_test".to_string(),
        dataset: "synthetic_mnist[60+30]".to_string(),
        dataset_seed: 21,
        regime: "plain".to_string(),
        seed: 23,
        net_seed: 22,
        train: vec![("epochs".to_string(), 2.0), ("lr".to_string(), 2e-3)],
    }
}

fn build() -> Sequential {
    lenet5(&LeNetConfig::mnist(22))
}

fn train(model: &mut Sequential) {
    let data = synthetic_mnist(60, 30, 21);
    Trainer::new(TrainConfig::new(2, 16, 23)).fit(model, &data.train, &mut Adam::new(2e-3));
}

#[test]
fn cache_hit_reproduces_identical_accuracies() {
    let cache = temp_cache("hit");
    let data = synthetic_mnist(60, 30, 21);

    // First experiment of the sweep: trains and saves.
    let mut first = cache.get_or_train(&tiny_key(), build, train);
    let acc_first = evaluate(&mut first, &data.test, 16);
    assert_eq!(cache.stats().trained, 1);
    assert_eq!(cache.stats().hits, 0);

    // Second experiment sharing the architecture: must hit, not retrain.
    let mut second = cache.get_or_train(&tiny_key(), build, |_| {
        panic!("cache hit must not retrain");
    });
    let acc_second = evaluate(&mut second, &data.test, 16);
    assert_eq!(
        cache.stats().trained,
        1,
        "the model is trained exactly once"
    );
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(
        acc_first, acc_second,
        "restored model must reproduce the fresh-train accuracy exactly"
    );

    // A fresh cache instance on the same directory (a new process in a
    // sweep) also hits.
    let reopened = ModelCache::new(cache.dir());
    let mut third = reopened.get_or_train(&tiny_key(), build, |_| {
        panic!("persisted entry must satisfy a new cache instance");
    });
    assert_eq!(evaluate(&mut third, &data.test, 16), acc_first);
    assert_eq!(reopened.stats().hits, 1);
}

#[test]
fn changed_train_config_misses_instead_of_hitting() {
    let cache = temp_cache("miss");
    cache.get_or_train(&tiny_key(), build, train);

    let mut longer = tiny_key();
    longer.train[0].1 = 3.0; // more epochs → different model identity
    let mut retrained = false;
    cache.get_or_train(&longer, build, |m| {
        retrained = true;
        train(m);
    });
    assert!(
        retrained,
        "a different train config must not reuse the entry"
    );
    assert_eq!(cache.stats().trained, 2);
    assert_eq!(cache.stats().hits, 0);
}

#[test]
fn candidate_sweep_cache_is_keyed_by_seed_and_base() {
    use cn_bench::cache::cached_candidates;
    use cn_bench::Pair;

    let cache = temp_cache("cands");
    let data = synthetic_mnist(40, 20, 21);
    let mut base = build();
    train(&mut base);

    let first = cached_candidates(
        &cache,
        Pair::LeNet5Mnist,
        Scale::Quick,
        0.5,
        1,
        &base,
        &data,
    );
    // Same identity: served from the cache file, identical content.
    let again = cached_candidates(
        &cache,
        Pair::LeNet5Mnist,
        Scale::Quick,
        0.5,
        1,
        &base,
        &data,
    );
    assert_eq!(first, again);
    let files_before = std::fs::read_dir(cache.dir()).unwrap().count();

    // A different master seed denotes a differently trained base: the
    // entry must not be reused, a new one appears.
    let _other = cached_candidates(
        &cache,
        Pair::LeNet5Mnist,
        Scale::Quick,
        0.5,
        2,
        &base,
        &data,
    );
    let files_after = std::fs::read_dir(cache.dir()).unwrap().count();
    assert_eq!(
        files_after,
        files_before + 1,
        "changed seed must create a distinct candidate-sweep entry"
    );
}

#[test]
fn corrupt_cache_entry_falls_back_to_training() {
    let cache = temp_cache("corrupt");
    cache.get_or_train(&tiny_key(), build, train);

    // Clobber the stored container.
    let entry = std::fs::read_dir(cache.dir())
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.path().extension().is_some_and(|x| x == "cnm"))
        .expect("cache entry exists");
    std::fs::write(entry.path(), b"garbage").unwrap();

    let mut retrained = false;
    cache.get_or_train(&tiny_key(), build, |m| {
        retrained = true;
        train(m);
    });
    assert!(retrained, "corrupt entries must retrain, not crash");
}
