//! Structured experiment reports with a stable JSON schema.
//!
//! Every experiment returns an [`ExperimentReport`]; the runner stamps the
//! wall clock, renders the human-readable tables, and writes the JSON file
//! that the perf-trajectory tooling (`BENCH_*.json`) ingests.
//!
//! # Schema (version 1)
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "experiment":     "fig2",          // registry name
//!   "title":          "paper Fig. 2 — …",
//!   "scale":          "quick",         // quick | default | full
//!   "seed":           "24301",         // master seed (decimal string: u64-lossless)
//!   "wall_clock_secs": 12.8,
//!   "config":  { "<key>": <number|string>, … },
//!   "metrics": { "<key>": <number>, … },
//!   "series":  [ { "label": "…", "points": [ {"x":0.0,"mean":0.99,"std":0.0}, … ] }, … ],
//!   "tables":  [ { "title": "…", "headers": […], "rows": [[…], …] }, … ],
//!   "notes":   [ "reproduction check …", … ]
//! }
//! ```
//!
//! `config` holds the resolved knobs of the run, `metrics` flat headline
//! scalars (`<pair>.<metric>` style keys), `series` the plottable curves
//! (x is σ, a layer index or an overhead fraction depending on the
//! experiment) and `tables` the exact human-readable tables also printed
//! to stdout. [`ExperimentReport::from_json`] round-trips everything, so
//! downstream consumers can rely on the schema staying parseable.

use correctnet::export::json::Json;
use correctnet::report::render_table;

/// Version stamp written into every report.
pub const SCHEMA_VERSION: u32 = 1;

/// One point of a plottable series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Abscissa (σ, layer index or overhead fraction).
    pub x: f64,
    /// Mean accuracy (fraction, not percent).
    pub mean: f64,
    /// Accuracy standard deviation.
    pub std: f64,
}

/// A labelled curve (e.g. one network–dataset pair).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display label, `<pair>` or `<pair>/<variant>`.
    pub label: String,
    /// The curve's points.
    pub points: Vec<SeriesPoint>,
}

/// A rendered table: headers plus stringly rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TableBlock {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row has the header arity).
    pub rows: Vec<Vec<String>>,
}

/// Structured outcome of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Registry name (`fig2`, `table1`, …).
    pub experiment: String,
    /// Human-readable title (which paper artifact this regenerates).
    pub title: String,
    /// Scale profile name the run used.
    pub scale: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Wall-clock duration, stamped by the runner.
    pub wall_clock_secs: f64,
    /// Resolved configuration knobs (ordered).
    pub config: Vec<(String, Json)>,
    /// Flat headline scalars (ordered).
    pub metrics: Vec<(String, f64)>,
    /// Plottable curves.
    pub series: Vec<Series>,
    /// Human-readable tables (also printed to stdout).
    pub tables: Vec<TableBlock>,
    /// Reproduction checks / caveats.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Empty report skeleton for an experiment run.
    pub fn new(experiment: &str, title: &str, scale: &str, seed: u64) -> ExperimentReport {
        ExperimentReport {
            experiment: experiment.to_string(),
            title: title.to_string(),
            scale: scale.to_string(),
            seed,
            wall_clock_secs: 0.0,
            config: Vec::new(),
            metrics: Vec::new(),
            series: Vec::new(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Records a numeric configuration knob.
    pub fn config_num(&mut self, key: &str, value: impl Into<f64>) {
        self.config.push((key.to_string(), Json::num(value.into())));
    }

    /// Records a string configuration knob.
    pub fn config_str(&mut self, key: &str, value: impl Into<String>) {
        self.config.push((key.to_string(), Json::str(value.into())));
    }

    /// Records a headline scalar.
    pub fn metric(&mut self, key: &str, value: impl Into<f64>) {
        self.metrics.push((key.to_string(), value.into()));
    }

    /// Records a table (the runner prints it and the JSON embeds it).
    pub fn table(&mut self, title: &str, headers: &[&str], rows: Vec<Vec<String>>) {
        self.tables.push(TableBlock {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows,
        });
    }

    /// Records a reproduction-check note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Serializes to the schema-version-1 JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::num(SCHEMA_VERSION as f64)),
            ("experiment", Json::str(self.experiment.clone())),
            ("title", Json::str(self.title.clone())),
            ("scale", Json::str(self.scale.clone())),
            // Decimal string, not a number: JSON numbers are f64 and would
            // silently corrupt seeds above 2^53.
            ("seed", Json::str(self.seed.to_string())),
            ("wall_clock_secs", Json::num(self.wall_clock_secs)),
            ("config", Json::Obj(self.config.clone())),
            (
                "metrics",
                Json::obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::num(*v)))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "series",
                Json::arr(self.series.iter().map(|s| {
                    Json::obj([
                        ("label", Json::str(s.label.clone())),
                        (
                            "points",
                            Json::arr(s.points.iter().map(|p| {
                                Json::obj([
                                    ("x", Json::num(p.x)),
                                    ("mean", Json::num(p.mean)),
                                    ("std", Json::num(p.std)),
                                ])
                            })),
                        ),
                    ])
                })),
            ),
            (
                "tables",
                Json::arr(self.tables.iter().map(|t| {
                    Json::obj([
                        ("title", Json::str(t.title.clone())),
                        (
                            "headers",
                            Json::arr(t.headers.iter().map(|h| Json::str(h.clone()))),
                        ),
                        (
                            "rows",
                            Json::arr(
                                t.rows
                                    .iter()
                                    .map(|row| Json::arr(row.iter().map(|c| Json::str(c.clone())))),
                            ),
                        ),
                    ])
                })),
            ),
            (
                "notes",
                Json::arr(self.notes.iter().map(|n| Json::str(n.clone()))),
            ),
        ])
    }

    /// Parses a schema-version-1 JSON document back into a report.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<ExperimentReport, String> {
        let version = json
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")?;
        if version as u32 != SCHEMA_VERSION {
            return Err(format!("unsupported schema_version {version}"));
        }
        let get_str = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("missing string field `{key}`"))
        };
        let get_num = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing numeric field `{key}`"))
        };
        let series = json
            .get("series")
            .and_then(Json::as_arr)
            .ok_or("missing `series`")?
            .iter()
            .map(|s| {
                let label = s
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("series without label")?
                    .to_string();
                let points = s
                    .get("points")
                    .and_then(Json::as_arr)
                    .ok_or("series without points")?
                    .iter()
                    .map(|p| {
                        Ok(SeriesPoint {
                            x: p.get("x").and_then(Json::as_f64).ok_or("point without x")?,
                            mean: p
                                .get("mean")
                                .and_then(Json::as_f64)
                                .ok_or("point without mean")?,
                            std: p
                                .get("std")
                                .and_then(Json::as_f64)
                                .ok_or("point without std")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Series { label, points })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let tables = json
            .get("tables")
            .and_then(Json::as_arr)
            .ok_or("missing `tables`")?
            .iter()
            .map(|t| {
                let title = t
                    .get("title")
                    .and_then(Json::as_str)
                    .ok_or("table without title")?
                    .to_string();
                let headers = t
                    .get("headers")
                    .and_then(Json::as_arr)
                    .ok_or("table without headers")?
                    .iter()
                    .map(|h| h.as_str().map(str::to_string).ok_or("non-string header"))
                    .collect::<Result<Vec<_>, _>>()?;
                let rows = t
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or("table without rows")?
                    .iter()
                    .map(|row| {
                        row.as_arr()
                            .ok_or("non-array row")?
                            .iter()
                            .map(|c| c.as_str().map(str::to_string).ok_or("non-string cell"))
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if rows.iter().any(|r| r.len() != headers.len()) {
                    return Err(format!("table `{title}` has rows of mismatched arity"));
                }
                Ok(TableBlock {
                    title,
                    headers,
                    rows,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ExperimentReport {
            experiment: get_str("experiment")?,
            title: get_str("title")?,
            scale: get_str("scale")?,
            seed: json
                .get("seed")
                .and_then(Json::as_str)
                .and_then(|s| s.parse().ok())
                .ok_or("missing or non-string `seed`")?,
            wall_clock_secs: get_num("wall_clock_secs")?,
            config: json
                .get("config")
                .and_then(Json::as_obj)
                .ok_or("missing `config`")?
                .to_vec(),
            metrics: json
                .get("metrics")
                .and_then(Json::as_obj)
                .ok_or("missing `metrics`")?
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|x| (k.clone(), x))
                        .ok_or(format!("non-numeric metric `{k}`"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            series,
            tables,
            notes: json
                .get("notes")
                .and_then(Json::as_arr)
                .ok_or("missing `notes`")?
                .iter()
                .map(|n| n.as_str().map(str::to_string).ok_or("non-string note"))
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// Renders the human-readable text output (title, tables, notes) —
    /// the same tables the legacy per-figure binaries printed.
    pub fn render_text(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        out.push_str(&format!(
            "experiment: {}  scale: {}  seed: {:#x}\n\n",
            self.experiment, self.scale, self.seed
        ));
        for table in &self.tables {
            if !table.title.is_empty() {
                out.push_str(&format!("--- {} ---\n", table.title));
            }
            let headers: Vec<&str> = table.headers.iter().map(String::as_str).collect();
            out.push_str(&render_table(&headers, &table.rows));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        let mut r = ExperimentReport::new("fig2", "paper Fig. 2", "quick", 0x5eed);
        r.wall_clock_secs = 1.25;
        r.config_num("mc_samples", 12.0);
        r.config_str("pairs", "all");
        r.metric("lenet_mnist.clean", 0.98);
        r.series.push(Series {
            label: "LeNet-5-MNIST".into(),
            points: vec![
                SeriesPoint {
                    x: 0.0,
                    mean: 0.98,
                    std: 0.0,
                },
                SeriesPoint {
                    x: 0.5,
                    mean: 0.41,
                    std: 0.08,
                },
            ],
        });
        r.table(
            "LeNet-5-MNIST",
            &["sigma", "accuracy"],
            vec![vec!["0.0".into(), "98.0%".into()]],
        );
        r.note("monotone degradation with sigma");
        r
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let report = sample();
        let text = report.to_json().render_pretty();
        let back = ExperimentReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn huge_seeds_roundtrip_losslessly() {
        let mut report = sample();
        report.seed = u64::MAX;
        let json = Json::parse(&report.to_json().render()).unwrap();
        let back = ExperimentReport::from_json(&json).unwrap();
        assert_eq!(back.seed, u64::MAX);
    }

    #[test]
    fn schema_version_is_checked() {
        let mut json = sample().to_json();
        if let Json::Obj(members) = &mut json {
            members[0].1 = Json::num(99.0);
        }
        assert!(ExperimentReport::from_json(&json)
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn mismatched_table_arity_is_rejected() {
        let mut report = sample();
        report.tables[0].rows.push(vec!["only-one".into()]);
        let json = report.to_json();
        assert!(ExperimentReport::from_json(&json)
            .unwrap_err()
            .contains("arity"));
    }

    #[test]
    fn render_text_contains_tables_and_notes() {
        let text = sample().render_text();
        assert!(text.contains("paper Fig. 2"));
        assert!(text.contains("| sigma"));
        assert!(text.contains("monotone degradation"));
    }
}
