//! Trained-model and candidate-sweep caches shared by all experiments.
//!
//! Training the LeNet/VGG base models dominates experiment runtime, and
//! several paper artifacts need the *same* trained model (Table I, Figs.
//! 7/8/10 all start from the σ = 0.5 Lipschitz base). [`ModelCache`]
//! persists each trained network once, keyed by a [`ModelKey`] —
//! (architecture, dataset seed, training configuration) — so a sweep over
//! many experiments trains every distinct model exactly once, both within
//! a `cn-experiments run` invocation and across processes.
//!
//! Entries are stored as `correctnet` model containers (`.cnm`): a JSON
//! rendering of the key plus the architecture fingerprint, followed by the
//! binary state dict. A hit is accepted only when the stored metadata is
//! byte-identical to the requested key's, so stale entries (changed
//! profile, changed architecture, different seeds) retrain instead of
//! silently loading the wrong weights.

use crate::profile::{pipeline_config, Pair, Scale};
use cn_data::TrainTest;
use cn_nn::Sequential;
use cn_tensor::hash::fnv1a64;
use correctnet::candidates::{CandidateReport, SuffixPoint};
use correctnet::export::json::Json;
use correctnet::export::model::{load_model, save_model};
use correctnet::pipeline::{CorrectNetConfig, CorrectNetStages};
use std::cell::Cell;
use std::path::{Path, PathBuf};

/// Identity of a trained model: everything that influences its weights.
///
/// Seeds are kept as `u64` fields (not in [`ModelKey::train`]) and render
/// as decimal strings in the metadata, so the full seed range stays
/// lossless — `f64` would silently collapse seeds above 2⁵³.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelKey {
    /// Architecture label (e.g. `vgg16_c100_w0.1875`).
    pub arch: String,
    /// Dataset label (generator + sizes).
    pub dataset: String,
    /// Dataset generation seed.
    pub dataset_seed: u64,
    /// Training regime label (`plain` | `lipschitz`).
    pub regime: String,
    /// Master training seed.
    pub seed: u64,
    /// Network-initialization seed.
    pub net_seed: u64,
    /// Flat training-configuration fields (epochs, learning rates, …).
    pub train: Vec<(String, f64)>,
}

impl ModelKey {
    /// The key plus the freshly built model's architecture fingerprint,
    /// as the JSON metadata stored inside the cache container.
    pub fn meta_json(&self, fingerprint: &str) -> Json {
        Json::obj([
            ("arch", Json::str(self.arch.clone())),
            ("fingerprint", Json::str(fingerprint)),
            ("dataset", Json::str(self.dataset.clone())),
            ("dataset_seed", Json::str(self.dataset_seed.to_string())),
            ("regime", Json::str(self.regime.clone())),
            ("seed", Json::str(self.seed.to_string())),
            ("net_seed", Json::str(self.net_seed.to_string())),
            (
                "train",
                Json::obj(
                    self.train
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::num(*v)))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }

    /// Stable file stem: readable prefix plus a digest of the full key.
    pub fn file_stem(&self) -> String {
        let digest = fnv1a64(self.meta_json("").render().as_bytes());
        format!("{}_{}_{digest:016x}", self.arch, self.regime)
    }
}

/// Hit/miss counters of a [`ModelCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Models restored from disk.
    pub hits: usize,
    /// Lookups that found no (valid) entry.
    pub misses: usize,
    /// Models trained (and saved) by this cache instance.
    pub trained: usize,
}

/// On-disk cache of trained models keyed by [`ModelKey`].
#[derive(Debug)]
pub struct ModelCache {
    dir: PathBuf,
    stats: Cell<CacheStats>,
}

impl ModelCache {
    /// Opens (and creates) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> ModelCache {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).ok();
        ModelCache {
            dir,
            stats: Cell::new(CacheStats::default()),
        }
    }

    /// Cache at the workspace-default location (`target/cn_models/`).
    pub fn default_location() -> ModelCache {
        ModelCache::new(cache_dir())
    }

    /// Root directory of this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters accumulated by this instance.
    pub fn stats(&self) -> CacheStats {
        self.stats.get()
    }

    /// Loads the model for `key`, or trains and persists it.
    ///
    /// `build` constructs the untrained network; `train` fits it in
    /// place. A stored entry is used only when its metadata matches `key`
    /// and the architecture fingerprint of the freshly built network —
    /// anything else counts as a miss and retrains. Delete the cache
    /// directory to force retraining.
    pub fn get_or_train(
        &self,
        key: &ModelKey,
        build: impl FnOnce() -> Sequential,
        train: impl FnOnce(&mut Sequential),
    ) -> Sequential {
        let mut model = build();
        let meta = key.meta_json(&model.arch_fingerprint());
        let path = self.dir.join(format!("{}.cnm", key.file_stem()));
        if path.exists() {
            match load_model(&path) {
                Ok((stored, dict)) if stored == meta => {
                    if model.load_state_dict(&dict).is_ok() {
                        self.bump(|s| s.hits += 1);
                        eprintln!("[cache] hit {}", key.file_stem());
                        return model;
                    }
                    eprintln!(
                        "[cache] undecodable entry for {}; retraining",
                        key.file_stem()
                    );
                }
                Ok(_) => eprintln!("[cache] stale entry for {}; retraining", key.file_stem()),
                Err(e) => eprintln!(
                    "[cache] unreadable entry for {} ({e}); retraining",
                    key.file_stem()
                ),
            }
        }
        self.bump(|s| s.misses += 1);
        train(&mut model);
        self.bump(|s| s.trained += 1);
        if let Err(e) = save_model(&path, &meta, &model) {
            eprintln!("[cache] failed to save {}: {e}", key.file_stem());
        } else {
            eprintln!("[cache] trained and saved {}", key.file_stem());
        }
        model
    }

    fn bump(&self, f: impl FnOnce(&mut CacheStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }
}

/// Directory where trained base models are cached between experiment runs
/// (`target/cn_models/`).
pub fn cache_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/cn_models");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Seed of the untrained-network initialization shared by all experiments.
pub const NET_SEED: u64 = 0xba5e;

/// Cache key for a pair's base model under a training regime.
pub fn base_key(pair: Pair, scale: Scale, regime: &str, cfg: &CorrectNetConfig) -> ModelKey {
    let (tr, te, data_seed) = pair.dataset_spec(scale);
    let mut train = vec![
        ("base_epochs".to_string(), cfg.base_epochs as f64),
        ("base_lr".to_string(), cfg.base_lr as f64),
        ("batch_size".to_string(), cfg.batch_size as f64),
    ];
    if regime == "lipschitz" {
        train.push(("reg_epochs".to_string(), cfg.reg_epochs as f64));
        train.push(("beta".to_string(), cfg.beta as f64));
        train.push(("sigma".to_string(), cfg.sigma as f64));
    }
    ModelKey {
        arch: match pair {
            Pair::Vgg16Cifar100 | Pair::Vgg16Cifar10 => {
                format!("{}_w{}", pair.tag(), scale.vgg_width())
            }
            _ => pair.tag().to_string(),
        },
        dataset: format!("{}[{tr}+{te}]", pair.tag()),
        dataset_seed: data_seed,
        regime: regime.to_string(),
        seed: cfg.seed,
        net_seed: NET_SEED,
        train,
    }
}

/// Trains (or loads) the Lipschitz-regularized base model for a pair.
pub fn lipschitz_base(
    cache: &ModelCache,
    pair: Pair,
    scale: Scale,
    sigma: f32,
    seed: u64,
) -> (Sequential, TrainTest) {
    let data = pair.dataset(scale);
    let cfg = pipeline_config(scale, sigma, seed);
    let stages = CorrectNetStages::new(cfg);
    let key = base_key(pair, scale, "lipschitz", &cfg);
    let model = cache.get_or_train(
        &key,
        || pair.network(scale, NET_SEED),
        |m| {
            stages.train_base(m, &data.train);
        },
    );
    (model, data)
}

/// Trains (or loads) the plainly trained model for a pair.
pub fn plain_base(
    cache: &ModelCache,
    pair: Pair,
    scale: Scale,
    seed: u64,
) -> (Sequential, TrainTest) {
    let data = pair.dataset(scale);
    let cfg = pipeline_config(scale, 0.5, seed);
    let stages = CorrectNetStages::new(cfg);
    let key = base_key(pair, scale, "plain", &cfg);
    let model = cache.get_or_train(
        &key,
        || pair.network(scale, NET_SEED),
        |m| {
            stages.train_plain(m, &data.train);
        },
    );
    (model, data)
}

/// Loads or computes the candidate report for a pair's Lipschitz base.
///
/// The suffix-variation sweep is the single most expensive *shared* step
/// across the experiments (table1/fig7/fig8/fig10 all need it for the
/// same base model), so it is cached as a small JSON file next to the
/// model cache. The canonical sweep seed makes it identical regardless of
/// which experiment computes it first; the entry is keyed by (pair,
/// sigma, scale, master seed, base-architecture fingerprint) — stored in
/// the file and compared on load — so a sweep computed for a *different*
/// trained base (other scale profile, other `--seed`) recomputes instead
/// of being silently reused.
pub fn cached_candidates(
    cache: &ModelCache,
    pair: Pair,
    scale: Scale,
    sigma: f32,
    seed: u64,
    base: &Sequential,
    data: &TrainTest,
) -> CandidateReport {
    let fingerprint = base.arch_fingerprint();
    let key = Json::obj([
        ("pair", Json::str(pair.tag())),
        ("sigma", Json::num(sigma as f64)),
        ("scale", Json::str(scale.name())),
        ("seed", Json::str(seed.to_string())),
        ("fingerprint", Json::str(fingerprint.clone())),
    ]);
    let path = cache.dir().join(format!(
        "{}_cands_{}_s{:02}_{:08x}.json",
        pair.tag(),
        scale.name(),
        (sigma * 10.0) as u32,
        fnv1a64(key.render().as_bytes()) as u32
    ));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Some(report) = Json::parse(&text)
            .ok()
            .filter(|j| j.get("key") == Some(&key))
            .and_then(|j| candidates_from_json(&j))
        {
            eprintln!("[cache] loaded candidate sweep for {}", pair.tag());
            return report;
        }
        eprintln!(
            "[cache] stale candidate sweep for {}; recomputing",
            pair.tag()
        );
    }
    // The sweep is a *selection* heuristic: a 160-image evaluation subset
    // and 8 MC samples locate the 95% knee at a fraction of the cost of
    // full-test evaluation (headline numbers always use the full test set).
    let mut cfg = pipeline_config(scale, sigma, 0xca4d);
    cfg.mc_samples = 8;
    let stages = CorrectNetStages::new(cfg);
    let sweep_test = data.test.take(data.test.len().min(160));
    let report = stages.candidates(base, &sweep_test);
    std::fs::write(&path, candidates_to_json(&report, key).render_pretty()).ok();
    report
}

fn candidates_to_json(report: &CandidateReport, key: Json) -> Json {
    Json::obj([
        ("key", key),
        ("clean_accuracy", Json::num(report.clean_accuracy as f64)),
        ("threshold", Json::num(report.threshold as f64)),
        ("candidate_count", Json::num(report.candidate_count as f64)),
        (
            "sweep",
            Json::arr(report.sweep.iter().map(|p| {
                Json::obj([
                    ("start", Json::num(p.start as f64)),
                    ("mean", Json::num(p.mean as f64)),
                    ("std", Json::num(p.std as f64)),
                ])
            })),
        ),
    ])
}

fn candidates_from_json(json: &Json) -> Option<CandidateReport> {
    let sweep = json
        .get("sweep")?
        .as_arr()?
        .iter()
        .map(|p| {
            Some(SuffixPoint {
                start: p.get("start")?.as_f64()? as usize,
                mean: p.get("mean")?.as_f64()? as f32,
                std: p.get("std")?.as_f64()? as f32,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    if sweep.is_empty() {
        return None;
    }
    Some(CandidateReport {
        clean_accuracy: json.get("clean_accuracy")?.as_f64()? as f32,
        threshold: json.get("threshold")?.as_f64()? as f32,
        candidate_count: json.get("candidate_count")?.as_f64()? as usize,
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_key(tag: &str) -> ModelKey {
        ModelKey {
            arch: tag.to_string(),
            dataset: "synthetic[8+4]".to_string(),
            dataset_seed: 7,
            regime: "plain".to_string(),
            seed: 0x5eed,
            net_seed: 0xba5e,
            train: vec![("epochs".to_string(), 1.0), ("lr".to_string(), 2e-3)],
        }
    }

    #[test]
    fn file_stem_is_stable_and_key_sensitive() {
        let a = tiny_key("lenet_mnist");
        assert_eq!(a.file_stem(), a.file_stem());
        let mut b = a.clone();
        b.train[0].1 = 2.0;
        assert_ne!(a.file_stem(), b.file_stem());
        let mut c = a.clone();
        c.dataset_seed = 8;
        assert_ne!(a.file_stem(), c.file_stem());
        let mut d = a.clone();
        d.seed = 42;
        assert_ne!(a.file_stem(), d.file_stem());
    }

    #[test]
    fn meta_json_embeds_every_key_field() {
        let meta = tiny_key("lenet_mnist").meta_json("abc123");
        assert_eq!(meta.get("fingerprint").unwrap().as_str(), Some("abc123"));
        assert_eq!(meta.get("regime").unwrap().as_str(), Some("plain"));
        assert_eq!(
            meta.get("train").unwrap().get("epochs").unwrap().as_f64(),
            Some(1.0)
        );
        // Seeds are strings, lossless over the full u64 range.
        assert_eq!(meta.get("seed").unwrap().as_str(), Some("24301"));
        let mut big = tiny_key("x");
        big.seed = u64::MAX;
        let mut off = tiny_key("x");
        off.seed = u64::MAX - 1;
        assert_ne!(
            big.meta_json("f"),
            off.meta_json("f"),
            "adjacent huge seeds must not collapse to one cache entry"
        );
    }

    #[test]
    fn candidate_report_json_roundtrip() {
        let report = CandidateReport {
            clean_accuracy: 0.9,
            threshold: 0.95,
            candidate_count: 2,
            sweep: vec![
                SuffixPoint {
                    start: 0,
                    mean: 0.4,
                    std: 0.05,
                },
                SuffixPoint {
                    start: 1,
                    mean: 0.88,
                    std: 0.01,
                },
            ],
        };
        let key = Json::obj([("pair", Json::str("lenet_mnist"))]);
        let doc = candidates_to_json(&report, key.clone());
        assert_eq!(doc.get("key"), Some(&key));
        let back = candidates_from_json(&doc).unwrap();
        assert_eq!(back, report);
    }
}
