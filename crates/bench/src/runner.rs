//! The experiment runner: resolves registry names, shares one trained-
//! model cache across a sweep, stamps wall-clock times, prints the
//! human-readable tables and writes the JSON report files.

use crate::cache::{cache_dir, ModelCache};
use crate::experiments::{self, Ctx};
use crate::profile::Scale;
use crate::report::ExperimentReport;
use std::path::PathBuf;
use std::time::Instant;

/// Default master seed of experiment runs (kept from the legacy binaries
/// so cached models carry over between CLI and shims).
pub const DEFAULT_SEED: u64 = 0x5eed;

/// Options of one `cn-experiments run` invocation.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Scale profile (CLI `--scale`, else `CN_SCALE`, else quick).
    pub scale: Scale,
    /// Directory for JSON reports; `None` skips writing them.
    pub out_dir: Option<PathBuf>,
    /// Trained-model cache directory.
    pub cache_dir: PathBuf,
    /// Master seed.
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            scale: Scale::from_env(),
            out_dir: Some(PathBuf::from("results")),
            cache_dir: cache_dir(),
            seed: DEFAULT_SEED,
        }
    }
}

/// Outcome of one experiment within a sweep.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The experiment's structured report (wall clock stamped).
    pub report: ExperimentReport,
    /// Where the JSON report was written, when requested.
    pub json_path: Option<PathBuf>,
}

/// Runs one registered experiment against an existing cache.
///
/// # Errors
///
/// Returns a message for unknown names or unwritable output directories.
pub fn run_one(name: &str, opts: &RunOptions, cache: &ModelCache) -> Result<RunSummary, String> {
    let experiment = experiments::find(name)
        .ok_or_else(|| format!("unknown experiment `{name}` (try `cn-experiments list`)"))?;
    let ctx = Ctx::new(opts.scale, opts.seed, cache);
    eprintln!(
        "[run] {name} (scale {}, seed {:#x})",
        opts.scale.name(),
        opts.seed
    );
    let started = Instant::now();
    let mut report = experiment.run(&ctx);
    report.wall_clock_secs = started.elapsed().as_secs_f64();
    print!("{}", report.render_text());
    println!("wall clock: {:.1}s", report.wall_clock_secs);

    let json_path = match &opts.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create output directory {}: {e}", dir.display()))?;
            let path = dir.join(format!("{name}_{}.json", opts.scale.name()));
            std::fs::write(&path, report.to_json().render_pretty())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("wrote {}", path.display());
            Some(path)
        }
        None => None,
    };
    Ok(RunSummary { report, json_path })
}

/// Runs a sweep of experiments sharing one trained-model cache, so any
/// base model needed by several experiments is trained at most once.
///
/// # Errors
///
/// Fails fast on the first unknown name or I/O failure.
pub fn run_many(names: &[String], opts: &RunOptions) -> Result<Vec<RunSummary>, String> {
    let cache = ModelCache::new(&opts.cache_dir);
    let mut summaries = Vec::new();
    for name in names {
        summaries.push(run_one(name, opts, &cache)?);
    }
    let stats = cache.stats();
    eprintln!(
        "[cache] {} hit(s), {} miss(es), {} model(s) trained this run",
        stats.hits, stats.misses, stats.trained
    );
    Ok(summaries)
}

/// Entry point of the deprecated per-figure binaries: forwards to the
/// registry with legacy-compatible defaults (`CN_SCALE`, `results/`).
pub fn shim_main(name: &str) {
    eprintln!(
        "[deprecated] the `{name}` binary is a compatibility shim; use \
         `cargo run -p cn-bench --bin cn-experiments -- run {name}` instead."
    );
    let opts = RunOptions::default();
    if let Err(e) = run_many(&[name.to_string()], &opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_rejected() {
        let opts = RunOptions {
            out_dir: None,
            ..RunOptions::default()
        };
        let cache = ModelCache::new(std::env::temp_dir().join("cn_runner_test_cache"));
        let err = run_one("not_an_experiment", &opts, &cache).unwrap_err();
        assert!(err.contains("unknown experiment"));
    }
}
