//! Named bench baselines: the machine-readable perf trajectory.
//!
//! A [`Baseline`] is one recorded benchmark run — every benchmark's full
//! per-sample vector plus enough provenance (host fingerprint, git rev,
//! creation time) to judge whether two runs are comparable. Baselines
//! are saved as `BENCH_<name>.json` at the repo root (schema below) and
//! compared with [`compare::compare`], whose statistical gate is what
//! turns the mini-criterion harness from a printer into a CI gate.
//!
//! Benchmarks are identified by a four-level taxonomy
//! `workspace/bench/group/id` (e.g. `cn-bench/gemm/gemm_packed/square256`):
//! the crate, the bench binary, the criterion group and the benchmark id.
//! The `bench` and `group/id` levels come straight from the criterion
//! shim's `CN_BENCH_JSONL` records ([`Baseline::ingest_jsonl`]).
//!
//! # Schema (version 1)
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "kind": "bench-baseline",
//!   "name": "seed",
//!   "created_unix": 1754500000,
//!   "git_rev": "8da93b8",
//!   "host": { "hostname": "…", "os": "linux", "arch": "x86_64", "cpus": 8 },
//!   "benchmarks": [
//!     {
//!       "workspace": "cn-bench",
//!       "bench": "gemm",
//!       "group": "gemm_packed",
//!       "id": "square256",
//!       "iters_per_sample": 180,
//!       "samples_ns": [701234.5, …]
//!     }, …
//!   ]
//! }
//! ```
//!
//! Mean/min/max are derived, never stored — stored summaries could
//! silently diverge from the samples they summarize.
//!
//! Corrupt or incomplete files are rejected with a named
//! [`BaselineError`] (mirroring the `.cnm` cache's corrupt-entry
//! handling: a bad artifact is a diagnosable error, not a crash).

pub mod compare;

use correctnet::export::json::Json;
use std::fmt;
use std::path::{Path, PathBuf};

/// Version stamp written into every baseline file.
pub const BASELINE_SCHEMA_VERSION: u32 = 1;

/// The `kind` discriminator distinguishing baselines from the other
/// schema-v1 JSON artifacts in the repo (experiment reports).
pub const BASELINE_KIND: &str = "bench-baseline";

/// Why a baseline could not be loaded or ingested.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Filesystem-level failure.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The underlying error, stringified.
        detail: String,
    },
    /// The file is not valid JSON (or a JSONL line is not).
    Parse {
        /// The parser's message.
        detail: String,
    },
    /// A required field is absent.
    MissingField {
        /// Dotted path of the field, e.g. `benchmarks[2].samples_ns`.
        field: String,
    },
    /// A field is present but has the wrong type or an invalid value.
    BadField {
        /// Dotted path of the field.
        field: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The file's `schema_version`/`kind` is not one this code reads.
    UnsupportedSchema {
        /// What the file declared.
        found: String,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Io { path, detail } => {
                write!(f, "baseline I/O error at {}: {detail}", path.display())
            }
            BaselineError::Parse { detail } => write!(f, "baseline is not valid JSON: {detail}"),
            BaselineError::MissingField { field } => {
                write!(f, "baseline is missing field `{field}`")
            }
            BaselineError::BadField { field, reason } => {
                write!(f, "baseline field `{field}` is invalid: {reason}")
            }
            BaselineError::UnsupportedSchema { found } => {
                write!(f, "unsupported baseline schema: {found}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// Where a baseline was measured. Two baselines from different hosts are
/// still comparable, but the compare layer flags the mismatch — absolute
/// wall-clock across machines is apples to oranges.
#[derive(Debug, Clone, PartialEq)]
pub struct HostFingerprint {
    /// Machine hostname (`unknown` when undeterminable).
    pub hostname: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available logical CPUs.
    pub cpus: u64,
}

impl HostFingerprint {
    /// Fingerprint of the current machine.
    pub fn detect() -> HostFingerprint {
        let hostname = std::env::var("HOSTNAME")
            .ok()
            .filter(|h| !h.is_empty())
            .or_else(|| {
                std::fs::read_to_string("/etc/hostname")
                    .ok()
                    .map(|h| h.trim().to_string())
                    .filter(|h| !h.is_empty())
            })
            .unwrap_or_else(|| "unknown".to_string());
        HostFingerprint {
            hostname,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("hostname", Json::str(&self.hostname)),
            ("os", Json::str(&self.os)),
            ("arch", Json::str(&self.arch)),
            ("cpus", Json::num(self.cpus as f64)),
        ])
    }

    fn from_json(json: &Json) -> Result<HostFingerprint, BaselineError> {
        Ok(HostFingerprint {
            hostname: req_str(json, "host.hostname", "hostname")?,
            os: req_str(json, "host.os", "os")?,
            arch: req_str(json, "host.arch", "arch")?,
            cpus: req_u64(json, "host.cpus", "cpus")?,
        })
    }
}

/// One benchmark's recorded run inside a [`Baseline`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Taxonomy level 1: the crate the bench lives in (`cn-bench`).
    pub workspace: String,
    /// Taxonomy level 2: the bench binary (`gemm`, `serve_throughput`…).
    pub bench: String,
    /// Taxonomy level 3: the criterion group (`gemm_packed`…).
    pub group: String,
    /// Taxonomy level 4: the benchmark id within the group.
    pub id: String,
    /// Iterations batched into each timed sample.
    pub iters_per_sample: u64,
    /// Per-iteration nanoseconds, one entry per sample.
    pub samples_ns: Vec<f64>,
}

impl BenchRecord {
    /// The full hierarchical id, `workspace/bench/group/id`.
    pub fn full_id(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.workspace, self.bench, self.group, self.id
        )
    }

    /// Mean per-iteration nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    /// Fastest sample (ns/iter).
    pub fn min_ns(&self) -> f64 {
        self.samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }

    /// Slowest sample (ns/iter).
    pub fn max_ns(&self) -> f64 {
        self.samples_ns.iter().cloned().fold(0.0f64, f64::max)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("workspace", Json::str(&self.workspace)),
            ("bench", Json::str(&self.bench)),
            ("group", Json::str(&self.group)),
            ("id", Json::str(&self.id)),
            ("iters_per_sample", Json::num(self.iters_per_sample as f64)),
            (
                "samples_ns",
                Json::arr(self.samples_ns.iter().map(|&s| Json::num(s))),
            ),
        ])
    }

    fn from_json(json: &Json, ctx: &str) -> Result<BenchRecord, BaselineError> {
        let record = BenchRecord {
            workspace: req_str(json, &format!("{ctx}.workspace"), "workspace")?,
            bench: req_str(json, &format!("{ctx}.bench"), "bench")?,
            group: req_str(json, &format!("{ctx}.group"), "group")?,
            id: req_str(json, &format!("{ctx}.id"), "id")?,
            iters_per_sample: req_u64(
                json,
                &format!("{ctx}.iters_per_sample"),
                "iters_per_sample",
            )?,
            samples_ns: req_f64_arr(json, &format!("{ctx}.samples_ns"), "samples_ns")?,
        };
        if record.samples_ns.is_empty() {
            return Err(BaselineError::BadField {
                field: format!("{ctx}.samples_ns"),
                reason: "must contain at least one sample".to_string(),
            });
        }
        Ok(record)
    }
}

/// One named, saved benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Baseline name (`seed`, `pr12`, …) — also the file-name stem.
    pub name: String,
    /// Creation time, seconds since the Unix epoch.
    pub created_unix: u64,
    /// Short git revision the run was taken at (`unknown` outside git).
    pub git_rev: String,
    /// Where the run was measured.
    pub host: HostFingerprint,
    /// The recorded benchmarks, sorted by [`BenchRecord::full_id`].
    pub benchmarks: Vec<BenchRecord>,
}

impl Baseline {
    /// An empty baseline stamped with the current host/time/revision
    /// (`repo` is where `git rev-parse` runs).
    pub fn new_stamped(name: &str, repo: &Path) -> Baseline {
        Baseline {
            name: name.to_string(),
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            git_rev: detect_git_rev(repo),
            host: HostFingerprint::detect(),
            benchmarks: Vec::new(),
        }
    }

    /// The conventional file name for a baseline: `BENCH_<name>.json`.
    pub fn file_name(name: &str) -> String {
        format!("BENCH_{name}.json")
    }

    /// Ingests the criterion shim's `CN_BENCH_JSONL` feed: one JSON
    /// object per line with `bin`, `label`, `iters_per_sample` and
    /// `samples_ns`. `label` is split at its first `/` into group and id
    /// (label-only benchmarks get an empty group). When the feed holds
    /// several records for the same benchmark (re-runs appending to one
    /// file), the **last** record wins. The result replaces
    /// `self.benchmarks`, sorted by full id.
    pub fn ingest_jsonl(&mut self, workspace: &str, text: &str) -> Result<(), BaselineError> {
        let mut records: Vec<BenchRecord> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let ctx = format!("jsonl line {}", lineno + 1);
            let json = Json::parse(line).map_err(|e| BaselineError::Parse {
                detail: format!("{ctx}: {e}"),
            })?;
            let bin = req_str(&json, &format!("{ctx}.bin"), "bin")?;
            let label = req_str(&json, &format!("{ctx}.label"), "label")?;
            let (group, id) = match label.split_once('/') {
                Some((group, id)) => (group.to_string(), id.to_string()),
                None => (String::new(), label.clone()),
            };
            let record = BenchRecord {
                workspace: workspace.to_string(),
                bench: bin,
                group,
                id,
                iters_per_sample: req_u64(
                    &json,
                    &format!("{ctx}.iters_per_sample"),
                    "iters_per_sample",
                )?,
                samples_ns: req_f64_arr(&json, &format!("{ctx}.samples_ns"), "samples_ns")?,
            };
            records.retain(|r| r.full_id() != record.full_id());
            records.push(record);
        }
        records.sort_by_key(|r| r.full_id());
        self.benchmarks = records;
        Ok(())
    }

    /// The baseline as a schema-v1 JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::num(BASELINE_SCHEMA_VERSION as f64)),
            ("kind", Json::str(BASELINE_KIND)),
            ("name", Json::str(&self.name)),
            ("created_unix", Json::num(self.created_unix as f64)),
            ("git_rev", Json::str(&self.git_rev)),
            ("host", self.host.to_json()),
            (
                "benchmarks",
                Json::arr(self.benchmarks.iter().map(|b| b.to_json())),
            ),
        ])
    }

    /// Parses a schema-v1 JSON document back into a baseline. Corrupt
    /// documents are rejected with the specific [`BaselineError`].
    pub fn from_json(json: &Json) -> Result<Baseline, BaselineError> {
        if json.as_obj().is_none() {
            return Err(BaselineError::BadField {
                field: "<root>".to_string(),
                reason: "expected a JSON object".to_string(),
            });
        }
        let version = req_u64(json, "schema_version", "schema_version")?;
        if version != BASELINE_SCHEMA_VERSION as u64 {
            return Err(BaselineError::UnsupportedSchema {
                found: format!("schema_version {version}"),
            });
        }
        let kind = req_str(json, "kind", "kind")?;
        if kind != BASELINE_KIND {
            return Err(BaselineError::UnsupportedSchema {
                found: format!("kind `{kind}`"),
            });
        }
        let host = HostFingerprint::from_json(req(json, "host", "host")?)?;
        let bench_json = req(json, "benchmarks", "benchmarks")?;
        let items = bench_json.as_arr().ok_or_else(|| BaselineError::BadField {
            field: "benchmarks".to_string(),
            reason: "expected an array".to_string(),
        })?;
        let mut benchmarks = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            benchmarks.push(BenchRecord::from_json(item, &format!("benchmarks[{i}]"))?);
        }
        Ok(Baseline {
            name: req_str(json, "name", "name")?,
            created_unix: req_u64(json, "created_unix", "created_unix")?,
            git_rev: req_str(json, "git_rev", "git_rev")?,
            host,
            benchmarks,
        })
    }

    /// Renders the baseline as pretty JSON (trailing newline included).
    pub fn render(&self) -> String {
        let mut text = self.to_json().render_pretty();
        text.push('\n');
        text
    }

    /// Writes the baseline to `path`.
    pub fn save(&self, path: &Path) -> Result<(), BaselineError> {
        std::fs::write(path, self.render()).map_err(|e| BaselineError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })
    }

    /// Reads and parses a baseline from `path`.
    pub fn load(path: &Path) -> Result<Baseline, BaselineError> {
        let text = std::fs::read_to_string(path).map_err(|e| BaselineError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        let json = Json::parse(&text).map_err(|e| BaselineError::Parse {
            detail: e.to_string(),
        })?;
        Baseline::from_json(&json)
    }
}

/// Short git revision of `repo`'s HEAD, or `unknown`.
pub fn detect_git_rev(repo: &Path) -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(repo)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn req<'a>(json: &'a Json, ctx: &str, field: &str) -> Result<&'a Json, BaselineError> {
    json.get(field).ok_or_else(|| BaselineError::MissingField {
        field: ctx.to_string(),
    })
}

fn req_str(json: &Json, ctx: &str, field: &str) -> Result<String, BaselineError> {
    req(json, ctx, field)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| BaselineError::BadField {
            field: ctx.to_string(),
            reason: "expected a string".to_string(),
        })
}

fn req_u64(json: &Json, ctx: &str, field: &str) -> Result<u64, BaselineError> {
    let num = req(json, ctx, field)?
        .as_f64()
        .ok_or_else(|| BaselineError::BadField {
            field: ctx.to_string(),
            reason: "expected a number".to_string(),
        })?;
    if num < 0.0 || num.fract() != 0.0 {
        return Err(BaselineError::BadField {
            field: ctx.to_string(),
            reason: format!("expected a non-negative integer, got {num}"),
        });
    }
    Ok(num as u64)
}

fn req_f64_arr(json: &Json, ctx: &str, field: &str) -> Result<Vec<f64>, BaselineError> {
    let items = req(json, ctx, field)?
        .as_arr()
        .ok_or_else(|| BaselineError::BadField {
            field: ctx.to_string(),
            reason: "expected an array".to_string(),
        })?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_f64().ok_or_else(|| BaselineError::BadField {
                field: format!("{ctx}[{i}]"),
                reason: "expected a number".to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_baseline() -> Baseline {
        Baseline {
            name: "seed".to_string(),
            created_unix: 1_754_500_000,
            git_rev: "8da93b8".to_string(),
            host: HostFingerprint {
                hostname: "ci".to_string(),
                os: "linux".to_string(),
                arch: "x86_64".to_string(),
                cpus: 8,
            },
            benchmarks: vec![BenchRecord {
                workspace: "cn-bench".to_string(),
                bench: "gemm".to_string(),
                group: "gemm_packed".to_string(),
                id: "square256".to_string(),
                iters_per_sample: 180,
                samples_ns: vec![700_000.0, 710_000.0, 705_000.0],
            }],
        }
    }

    #[test]
    fn full_id_is_four_level_taxonomy() {
        let b = sample_baseline();
        assert_eq!(
            b.benchmarks[0].full_id(),
            "cn-bench/gemm/gemm_packed/square256"
        );
        assert_eq!(b.benchmarks[0].mean_ns(), 705_000.0);
        assert_eq!(b.benchmarks[0].min_ns(), 700_000.0);
        assert_eq!(b.benchmarks[0].max_ns(), 710_000.0);
    }

    #[test]
    fn jsonl_ingest_splits_labels_and_dedupes() {
        let mut b = sample_baseline();
        let feed = "\
{\"bin\":\"gemm\",\"label\":\"gemm_packed/square256\",\"warm_up_iters\":10,\"iters_per_sample\":4,\"samples_ns\":[1,2]}\n\
{\"bin\":\"gemm\",\"label\":\"bare\",\"warm_up_iters\":1,\"iters_per_sample\":1,\"samples_ns\":[5]}\n\
{\"bin\":\"gemm\",\"label\":\"gemm_packed/square256\",\"warm_up_iters\":10,\"iters_per_sample\":4,\"samples_ns\":[3,4]}\n";
        b.ingest_jsonl("cn-bench", feed).unwrap();
        assert_eq!(b.benchmarks.len(), 2);
        // Sorted by full id; the re-run record replaced the first one.
        assert_eq!(b.benchmarks[0].full_id(), "cn-bench/gemm//bare");
        assert_eq!(b.benchmarks[1].samples_ns, vec![3.0, 4.0]);
    }

    #[test]
    fn hostile_baseline_file_fails_as_parse_error() {
        // cn-benchcmp loads attacker-writable baseline files; a bomb of
        // 100k nested arrays must surface as BaselineError::Parse via the
        // JSON depth limit, not blow the stack.
        let dir = std::env::temp_dir().join("cn_bench_baseline_hostile");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bomb.json");
        std::fs::write(&path, "[".repeat(100_000)).unwrap();
        let err = Baseline::load(&path).unwrap_err();
        assert!(matches!(err, BaselineError::Parse { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_rejects_missing_fields() {
        let mut b = sample_baseline();
        let err = b
            .ingest_jsonl("cn-bench", "{\"bin\":\"gemm\",\"label\":\"x\"}")
            .unwrap_err();
        assert!(matches!(err, BaselineError::MissingField { .. }), "{err}");
    }

    #[test]
    fn file_name_convention() {
        assert_eq!(Baseline::file_name("seed"), "BENCH_seed.json");
    }
}
