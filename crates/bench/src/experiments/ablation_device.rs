//! **Extension ablation** (not a paper figure): does the paper's
//! weight-level log-normal model (eq. 1–2) agree with a device-level
//! crossbar simulation? Compares accuracy under weight-level log-normal
//! variation, conductance-level programming variation on differential
//! pairs (optionally quantized to 32 levels), and log-normal combined with
//! stuck-at faults, retention drift and static IR-drop attenuation —
//! validating the substitution argument of docs/ARCHITECTURE.md and probing the
//! non-idealities the paper leaves to future work.

use super::{Ctx, Experiment};
use crate::profile::Pair;
use crate::report::{ExperimentReport, Series, SeriesPoint};
use cn_analog::cell::CellSpec;
use cn_analog::deployment::DeploymentMode;
use cn_analog::drift::ConductanceDrift;
use cn_analog::faults::StuckFaults;
use cn_analog::irdrop::IrDrop;
use cn_analog::montecarlo::McConfig;
use correctnet::engine::{monte_carlo, AnalogBackend};
use correctnet::report::pct_pm;

/// Device-model ablation regenerator.
pub struct AblationDevice;

const MC_SEED: u64 = 0xab1a;

impl Experiment for AblationDevice {
    fn name(&self) -> &'static str {
        "ablation_device"
    }

    fn title(&self) -> &'static str {
        "Ablation: weight-level vs device-level variation models"
    }

    fn description(&self) -> &'static str {
        "weight-level log-normal vs conductance/fault/drift/IR-drop models (extension)"
    }

    fn run(&self, ctx: &Ctx) -> ExperimentReport {
        let mut report = ctx.report(self);
        report.config_num("mc_seed", MC_SEED as f64);
        report.config_str("pair", Pair::LeNet5Mnist.name());

        let (model, data) = ctx.plain_base(Pair::LeNet5Mnist);
        let mut rows = Vec::new();
        let mut curves: Vec<(String, Vec<SeriesPoint>)> = Vec::new();
        for sigma in [0.1f32, 0.3, 0.5] {
            let mc = McConfig::new(ctx.scale.mc_samples(), sigma, MC_SEED);
            let modes: [(&str, DeploymentMode); 6] = [
                (
                    "weight log-normal (paper)",
                    DeploymentMode::WeightLognormal { sigma },
                ),
                (
                    "conductance pairs",
                    DeploymentMode::Conductance {
                        spec: CellSpec {
                            prog_sigma: sigma,
                            ..CellSpec::ideal(1.0, 100.0)
                        },
                        tile_size: 128,
                    },
                ),
                (
                    "conductance + 32 levels",
                    DeploymentMode::Conductance {
                        spec: CellSpec {
                            prog_sigma: sigma,
                            levels: Some(32),
                            ..CellSpec::ideal(1.0, 100.0)
                        },
                        tile_size: 128,
                    },
                ),
                (
                    "log-normal + 2% stuck-at-0",
                    DeploymentMode::LognormalWithFaults {
                        sigma,
                        faults: StuckFaults::new(0.02, 0.0, 0.0),
                    },
                ),
                (
                    "log-normal + drift (t=1000·t0)",
                    DeploymentMode::LognormalWithDrift {
                        sigma,
                        drift: ConductanceDrift::new(0.02, 0.005, 1.0),
                        t: 1000.0,
                    },
                ),
                (
                    "log-normal + IR drop (α=0.15)",
                    DeploymentMode::LognormalWithIrDrop {
                        sigma,
                        irdrop: IrDrop::new(0.15),
                    },
                ),
            ];
            for (label, mode) in modes {
                let r = monte_carlo(&model, &data.test, &mc, &AnalogBackend::new(mode));
                rows.push(vec![
                    format!("{sigma:.1}"),
                    label.to_string(),
                    pct_pm(r.mean, r.std),
                ]);
                let point = SeriesPoint {
                    x: sigma as f64,
                    mean: r.mean as f64,
                    std: r.std as f64,
                };
                match curves.iter_mut().find(|(l, _)| l == label) {
                    Some((_, points)) => points.push(point),
                    None => curves.push((label.to_string(), vec![point])),
                }
            }
        }
        for (label, points) in curves {
            report.series.push(Series { label, points });
        }
        report.table("", &["sigma", "variation model", "accuracy"], rows);
        report.note("Check: the models agree to a few accuracy points at each σ,");
        report.note("so conclusions drawn with the paper's weight-level model carry");
        report.note("over to the device-level substrate.");
        report
    }
}
