//! **Net serving**: the full network path — framed TCP requests through
//! the [`cn_net::Frontend`], pick-two-least-loaded shard routing, and
//! the dynamic-batching servers — measured with the cn-net load
//! generator over loopback.
//!
//! Where the `serving` experiment drives the in-process `Fleet` API,
//! this one pays the whole wire cost (frame codec, kernel TCP, handler
//! pool, admission queue) and answers two deployment questions the
//! in-process numbers cannot: (1) how throughput scales with shard
//! count when every request arrives over a socket, and (2) what
//! client-observed latency looks like under an *open-loop* arrival
//! schedule, which — unlike closed-loop driving — does not let a slow
//! server pace its own load (no coordinated omission).

use super::{Ctx, Experiment};
use crate::report::{ExperimentReport, Series, SeriesPoint};
use cn_analog::engine::AnalogBackend;
use cn_net::{Frontend, FrontendConfig, LoadgenConfig, Mode, RouterConfig, ShardRouter};
use cn_serve::ServeConfig;
use std::sync::Arc;
use std::time::Duration;

/// Network-serving regenerator.
pub struct NetServing;

const SIGMA: f32 = 0.3;
const SHARD_SWEEP: [usize; 3] = [1, 2, 4];
const CONNECTIONS: usize = 8;
const WINDOW: usize = 8;
const BATCH_ROWS: usize = 2;
const SAMPLE_DIMS: [usize; 1] = [32];
/// Open-loop arrival rate as a fraction of the measured closed-loop
/// capacity — high enough to exercise batching, low enough that the
/// schedule stays feasible and latency reflects service time, not an
/// unbounded queue.
const OPEN_LOOP_UTILIZATION: f64 = 0.5;

/// One loadgen pass against a fresh loopback frontend; returns the
/// report and tears the whole stack down (drain → join → shutdown).
fn drive(
    model: &cn_nn::Sequential,
    backend: &AnalogBackend,
    shards: usize,
    seed: u64,
    load: &LoadgenConfig,
) -> cn_net::LoadgenReport {
    let serve = ServeConfig::new(8)
        .max_wait(Duration::from_millis(1))
        .workers(2);
    let router = Arc::new(ShardRouter::new(
        model,
        backend.clone(),
        shards,
        seed,
        &SAMPLE_DIMS,
        &RouterConfig::new(serve),
    ));
    let frontend = Frontend::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        FrontendConfig::default().handlers(CONNECTIONS),
    )
    .expect("bind loopback frontend");
    let addr = frontend.local_addr();
    drop(router);
    let report = cn_net::loadgen::run(addr, load).expect("loadgen run");
    frontend.drain();
    match Arc::try_unwrap(frontend.join()) {
        Ok(router) => router.shutdown(),
        Err(_) => unreachable!("all frontend threads exited"),
    }
    report
}

impl Experiment for NetServing {
    fn name(&self) -> &'static str {
        "net_serving"
    }

    fn title(&self) -> &'static str {
        "Net serving: TCP frontend + shard router under the cn-net load generator"
    }

    fn description(&self) -> &'static str {
        "wire-to-wire throughput scaling across shards and open-loop latency over loopback TCP"
    }

    fn run(&self, ctx: &Ctx) -> ExperimentReport {
        let mut report = ctx.report(self);
        let requests = ctx.scale.mc_samples() * 256; // quick: 3072 requests
        report.config_num("sigma", SIGMA as f64);
        report.config_num("connections", CONNECTIONS as f64);
        report.config_num("requests", requests as f64);
        report.config_num("batch_rows", BATCH_ROWS as f64);
        report.config_num("window", WINDOW as f64);

        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        report.config_num("host_cores", cores as f64);

        let model = cn_nn::zoo::mlp(&[32, 48, 10], ctx.seed);
        let backend = AnalogBackend::lognormal(SIGMA);

        let mut load = LoadgenConfig::new(&SAMPLE_DIMS);
        load.connections = CONNECTIONS;
        load.requests = requests;
        load.batch_rows = BATCH_ROWS;
        load.mode = Mode::Closed { window: WINDOW };
        load.seed = ctx.seed ^ 0x4e7;

        // Closed-loop shard sweep: capacity scaling over real sockets.
        let mut table_rows = Vec::new();
        let mut curve = Vec::new();
        let mut throughputs = Vec::new();
        for shards in SHARD_SWEEP {
            eprintln!("[net_serving] closed-loop run, shards = {shards} …");
            let r = drive(&model, &backend, shards, ctx.seed ^ 0x5e17e, &load);
            assert_eq!(r.mispaired, 0, "reply mispairing over loopback: {r:?}");
            report.metric(&format!("throughput_rps_s{shards}"), r.throughput_rps);
            report.metric(&format!("p50_ms_s{shards}"), r.p50_us / 1000.0);
            report.metric(&format!("p99_ms_s{shards}"), r.p99_us / 1000.0);
            table_rows.push(vec![
                shards.to_string(),
                format!("{:.0}", r.throughput_rps),
                format!("{:.2}", r.p50_us / 1000.0),
                format!("{:.2}", r.p95_us / 1000.0),
                format!("{:.2}", r.p99_us / 1000.0),
                r.backpressured.to_string(),
                format!("{}", r.completed),
            ]);
            curve.push(SeriesPoint {
                x: shards as f64,
                mean: r.throughput_rps,
                std: 0.0,
            });
            throughputs.push(r.throughput_rps);
        }
        report.series.push(Series {
            label: "closed-loop throughput vs shards".to_string(),
            points: curve,
        });
        report.metric(
            "shard_scaling",
            throughputs[SHARD_SWEEP.len() - 1] / throughputs[0].max(1e-9),
        );
        report.table(
            "closed-loop shard sweep (loopback TCP)",
            &[
                "shards",
                "req/s",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "backpressured",
                "completed",
            ],
            table_rows,
        );

        // Open-loop run on the widest fleet at a feasible fraction of
        // the measured closed-loop capacity: arrival times come from a
        // fixed schedule, so queueing delay is charged to latency
        // instead of silently slowing the generator down.
        let capacity = throughputs[SHARD_SWEEP.len() - 1];
        let qps = (capacity * OPEN_LOOP_UTILIZATION).max(50.0);
        eprintln!("[net_serving] open-loop run at {qps:.0} req/s …");
        let mut open = load.clone();
        open.requests = requests / 2;
        open.mode = Mode::Open { qps };
        let r = drive(
            &model,
            &backend,
            SHARD_SWEEP[SHARD_SWEEP.len() - 1],
            ctx.seed ^ 0x5e17e,
            &open,
        );
        assert_eq!(r.mispaired, 0, "reply mispairing over loopback: {r:?}");
        report.metric("open_loop_qps", qps);
        report.metric("open_loop_throughput_rps", r.throughput_rps);
        report.metric("open_loop_p50_ms", r.p50_us / 1000.0);
        report.metric("open_loop_p95_ms", r.p95_us / 1000.0);
        report.metric("open_loop_p99_ms", r.p99_us / 1000.0);
        report.metric("open_loop_lost", r.lost as f64);
        report.table(
            "open-loop latency (coordinated-omission-free)",
            &[
                "target req/s",
                "req/s",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "lost",
            ],
            vec![vec![
                format!("{qps:.0}"),
                format!("{:.0}", r.throughput_rps),
                format!("{:.2}", r.p50_us / 1000.0),
                format!("{:.2}", r.p95_us / 1000.0),
                format!("{:.2}", r.p99_us / 1000.0),
                r.lost.to_string(),
            ]],
        );

        report.note("Reproduction checks: (1) the shard sweep shows what");
        report.note("pick-two-least-loaded routing costs/buys as framed TCP requests");
        report.note("spread across independent dynamic-batching servers; (2) zero");
        report.note("mispaired replies across every run (request-id pinning holds under");
        report.note("load); (3) the open-loop schedule at half the measured capacity");
        report.note("completes without losses, with queueing delay charged to latency.");
        if cores == 1 {
            report.note("Single-core host: the shard sweep measures routing overhead only;");
            report.note("parallel throughput scaling needs cores >= shards x workers.");
        } else if throughputs[SHARD_SWEEP.len() - 1] <= throughputs[0] {
            report.note(format!(
                "WARNING: shard scaling not observed ({:.0} vs {:.0} req/s)",
                throughputs[SHARD_SWEEP.len() - 1],
                throughputs[0]
            ));
        }
        report
    }
}
