//! **Paper Fig. 7**: CorrectNet accuracy (trained once at σ = 0.5) versus
//! the original network across the variation sweep σ ∈ {0 … 0.5}, for all
//! four pairs.

use super::{candidate_prefix, Ctx, Experiment};
use crate::profile::{pipeline_config, Pair};
use crate::report::{ExperimentReport, Series, SeriesPoint};
use cn_analog::montecarlo::McConfig;
use correctnet::compensation::weight_overhead;
use correctnet::engine::{monte_carlo, AnalogBackend};
use correctnet::pipeline::CorrectNetStages;
use correctnet::report::pct_pm;

/// Fig. 7 regenerator.
pub struct Fig7;

const TRAIN_SIGMA: f32 = 0.5;
const PIPE_SEED: u64 = 0x0f07;
const MC_SEED: u64 = 0x0f70;

impl Experiment for Fig7 {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn title(&self) -> &'static str {
        "Fig. 7: CorrectNet vs original across σ (trained at σ = 0.5)"
    }

    fn description(&self) -> &'static str {
        "corrected vs original accuracy across the sigma sweep (paper Fig. 7)"
    }

    fn run(&self, ctx: &Ctx) -> ExperimentReport {
        let sigmas = [0.0f32, 0.2, 0.35, 0.5];
        let mut report = ctx.report(self);
        report.config_num("train_sigma", TRAIN_SIGMA as f64);
        report.config_str(
            "sigmas",
            sigmas
                .iter()
                .map(|s| format!("{s}"))
                .collect::<Vec<_>>()
                .join(","),
        );
        report.config_num("pipeline_seed", PIPE_SEED as f64);

        for pair in Pair::ALL {
            eprintln!("[fig7] running {} …", pair.name());
            let cfg = pipeline_config(ctx.scale, TRAIN_SIGMA, PIPE_SEED);
            let stages = CorrectNetStages::new(cfg);
            let (plain, data) = ctx.plain_base(pair);
            let (base, _) = ctx.lipschitz_base(pair, TRAIN_SIGMA);

            // Compensation on the candidate prefix at ratio 0.5 (the
            // trained CorrectNet model reused across the whole sweep, as in
            // the paper). Budget-capped stand-in for the RL placement (6%
            // like the search).
            let cand_report = ctx.candidates(pair, TRAIN_SIGMA, &base, &data);
            let candidates = candidate_prefix(&cand_report);
            let plan =
                correctnet::compensation::budgeted_uniform_plan(&base, &candidates, 0.5, 0.06);
            let corrected = stages.build_and_train(&base, &data.train, &plan);

            // Sweep on a 200-image subset (10 MC samples) — 12 curves × 6 σ
            // points over the full test set would dominate the runtime
            // without changing the curve shapes.
            let sweep_test = data.test.take(data.test.len().min(200));
            let mut rows = Vec::new();
            let mut orig_points = Vec::new();
            let mut corr_points = Vec::new();
            for (i, &sigma) in sigmas.iter().enumerate() {
                let mc = McConfig {
                    samples: if sigma == 0.0 {
                        1
                    } else {
                        ctx.scale.mc_samples().min(10)
                    },
                    sigma,
                    batch_size: 64,
                    seed: MC_SEED + i as u64,
                };
                let backend = AnalogBackend::lognormal(sigma);
                let orig = monte_carlo(&plain, &sweep_test, &mc, &backend);
                let corr = monte_carlo(&corrected, &sweep_test, &mc, &backend);
                rows.push(vec![
                    format!("{sigma:.1}"),
                    pct_pm(orig.mean, orig.std),
                    pct_pm(corr.mean, corr.std),
                ]);
                orig_points.push(SeriesPoint {
                    x: sigma as f64,
                    mean: orig.mean as f64,
                    std: orig.std as f64,
                });
                corr_points.push(SeriesPoint {
                    x: sigma as f64,
                    mean: corr.mean as f64,
                    std: corr.std as f64,
                });
            }
            let overhead = weight_overhead(&corrected);
            report.metric(&format!("{}.overhead", pair.tag()), overhead as f64);
            report.series.push(Series {
                label: format!("{}/original", pair.name()),
                points: orig_points,
            });
            report.series.push(Series {
                label: format!("{}/correctnet", pair.name()),
                points: corr_points,
            });
            report.table(
                &format!(
                    "{} (compensation overhead {:.2}%)",
                    pair.name(),
                    100.0 * overhead
                ),
                &["sigma", "original", "CorrectNet"],
                rows,
            );
        }
        report.note("Reproduction checks: the corrected curve dominates the original");
        report.note("at every σ > 0 and stays nearly flat where the original collapses.");
        report
    }
}
