//! **Serving**: the traffic-shaped workload — a [`cn_serve::Fleet`] of
//! independent analog deployments behind a dynamic-batching front,
//! measured under a multi-client load generator.
//!
//! This experiment goes beyond the paper's offline accuracy protocol: it
//! demonstrates that (1) dynamic micro-batching buys real throughput over
//! per-request inference on the same fleet, (2) redundant majority-vote
//! routing masks per-chip variation at a measurable disagreement rate,
//! and (3) conductance drift degrades instance agreement until the fleet
//! is re-programmed — the distributed error-corrected deployment story of
//! the related RRAM scale-out work.

use super::{Ctx, Experiment};
use crate::profile::Pair;
use crate::report::{ExperimentReport, Series, SeriesPoint};
use cn_analog::drift::ConductanceDrift;
use cn_analog::engine::AnalogBackend;
use cn_data::TrainTest;
use cn_nn::layers::{Dense, Flatten, Relu};
use cn_nn::optim::Adam;
use cn_nn::trainer::{TrainConfig, Trainer};
use cn_nn::Sequential;
use cn_serve::{Fleet, RoutePolicy, ServeConfig, ServeError, ServerStats, Ticket};
use cn_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Serving-throughput regenerator.
pub struct Serving;

const SIGMA: f32 = 0.3;
const REPLICAS: usize = 3;
const CLIENTS: usize = 16;
/// In-flight tickets per pipelined client (the request window the
/// batchers coalesce from).
const WINDOW: usize = 64;
const MAX_WAIT: Duration = Duration::from_millis(2);
/// Field age (in drift-reference units) of the aged majority fleet.
const DRIFT_T: f32 = 1.0e5;

/// Outcome of one load-generator run.
struct LoadResult {
    throughput_rps: f64,
    hits: usize,
    total: usize,
    stats: Vec<ServerStats>,
}

/// Pipelined round-robin load generator: [`CLIENTS`] threads each keep up
/// to [`WINDOW`] tickets in flight via [`Fleet::submit_next`], so the
/// instance batchers always have requests to coalesce. `QueueFull` is
/// backpressure: the client drains one in-flight reply and retries.
fn drive_pipelined(fleet: &Fleet, samples: &[(Tensor, usize)], total: usize) -> LoadResult {
    let next = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| {
                let mut inflight: VecDeque<(usize, Ticket)> = VecDeque::new();
                let drain = |inflight: &mut VecDeque<(usize, Ticket)>| {
                    if let Some((label, ticket)) = inflight.pop_front() {
                        let reply = ticket.wait().expect("worker dropped a request");
                        if reply.class == label {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                };
                let mut exhausted = false;
                while !exhausted || !inflight.is_empty() {
                    while !exhausted && inflight.len() < WINDOW {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            exhausted = true;
                            break;
                        }
                        let (sample, label) = &samples[i % samples.len()];
                        let ticket = loop {
                            match fleet.submit_next(sample) {
                                Ok(ticket) => break ticket,
                                Err(ServeError::QueueFull) => {
                                    drain(&mut inflight);
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("load generator hit a serving error: {e}"),
                            }
                        };
                        inflight.push_back((*label, ticket));
                    }
                    drain(&mut inflight);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    LoadResult {
        throughput_rps: total as f64 / elapsed,
        hits: hits.load(Ordering::Relaxed),
        total,
        stats: fleet.stats(),
    }
}

/// Synchronous (closed-loop) load generator: [`CLIENTS`] threads issue
/// one [`Fleet::classify`] at a time — the latency-shaped workload the
/// majority-vote runs use.
fn drive(fleet: &Fleet, samples: &[(Tensor, usize)], total: usize) -> LoadResult {
    let next = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let (sample, label) = &samples[i % samples.len()];
                let reply = loop {
                    match fleet.classify(sample) {
                        Ok(reply) => break reply,
                        Err(ServeError::QueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("load generator hit a serving error: {e}"),
                    }
                };
                if reply.class == *label {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    LoadResult {
        throughput_rps: total as f64 / elapsed,
        hits: hits.load(Ordering::Relaxed),
        total,
        stats: fleet.stats(),
    }
}

/// The throughput workload: an edge-sized MLP head over flattened MNIST
/// pixels, trained in a couple hundred milliseconds. Its per-sample
/// compute is small enough that per-request serving overhead (queue
/// wakeups, locks, reply scatter) is a visible cost — exactly the regime
/// dynamic micro-batching amortizes. (The conv LeNet's multi-millisecond
/// per-sample compute swamps that overhead, so it demonstrates the
/// health/redundancy story instead.)
fn throughput_model(data: &TrainTest, seed: u64) -> Sequential {
    let mut rng = cn_tensor::SeededRng::new(seed);
    let mut model = Sequential::new(vec![
        Box::new(Flatten::new()),
        Box::new(Dense::new(784, 48, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(48, 10, &mut rng)),
    ]);
    Trainer::new(TrainConfig::new(4, 32, seed ^ 0x77a1)).fit(
        &mut model,
        &data.train,
        &mut Adam::new(2e-3),
    );
    model
}

/// Requests-weighted aggregate of per-instance stats:
/// (p50 ms, p95 ms, p99 ms, batch fill).
fn aggregate(stats: &[ServerStats]) -> (f64, f64, f64, f64) {
    let total: f64 = stats.iter().map(|s| s.requests as f64).sum();
    if total == 0.0 {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let weighted = |f: &dyn Fn(&ServerStats) -> f64| -> f64 {
        stats.iter().map(|s| s.requests as f64 * f(s)).sum::<f64>() / total
    };
    (
        weighted(&|s| s.p50_us) / 1000.0,
        weighted(&|s| s.p95_us) / 1000.0,
        weighted(&|s| s.p99_us) / 1000.0,
        weighted(&|s| s.batch_fill),
    )
}

impl Experiment for Serving {
    fn name(&self) -> &'static str {
        "serving"
    }

    fn title(&self) -> &'static str {
        "Serving: dynamic-batching fleet under a multi-client load generator"
    }

    fn description(&self) -> &'static str {
        "micro-batching throughput, latency percentiles and majority-vote health of an analog fleet"
    }

    fn run(&self, ctx: &Ctx) -> ExperimentReport {
        let mut report = ctx.report(self);
        let requests = ctx.scale.mc_samples() * 1024; // quick: 12288 requests
        report.config_num("sigma", SIGMA as f64);
        report.config_num("replicas", REPLICAS as f64);
        report.config_num("clients", CLIENTS as f64);
        report.config_num("requests", requests as f64);
        report.config_num("max_wait_ms", MAX_WAIT.as_secs_f64() * 1000.0);

        let (model, data) = ctx.plain_base(Pair::LeNet5Mnist);
        let sample_dims = data.test.sample_dims().to_vec();
        let pool = data.test.len().min(256);
        let samples: Vec<(Tensor, usize)> = (0..pool)
            .map(|i| {
                let sample = data.test.images.batch_slice(i, i + 1).reshape(&sample_dims);
                (sample, data.test.labels[i])
            })
            .collect();
        let backend = AnalogBackend::lognormal(SIGMA);

        // Throughput: round-robin fleet serving the edge-sized MLP head,
        // per-request vs micro-batched.
        eprintln!("[serving] training the throughput workload head …");
        let mlp_head = throughput_model(&data, ctx.seed);
        let mut table_rows = Vec::new();
        let mut curve = Vec::new();
        let mut throughputs = Vec::new();
        for max_batch in [1usize, 32] {
            eprintln!("[serving] round-robin load run, max_batch = {max_batch} …");
            let config = ServeConfig::new(max_batch)
                .max_wait(MAX_WAIT)
                .workers(2)
                .queue_capacity(64 * max_batch);
            let rr_fleet = || {
                Fleet::new(
                    &mlp_head,
                    backend.clone(),
                    REPLICAS,
                    ctx.seed ^ 0x5e17e,
                    RoutePolicy::RoundRobin,
                    &sample_dims,
                    &config,
                )
            };
            // Warm up on a throwaway fleet, then measure on a fresh one so
            // the reported stats exclude cold-start latencies.
            let warmup = rr_fleet();
            drive_pipelined(&warmup, &samples, requests / 8);
            warmup.shutdown();
            let fleet = rr_fleet();
            let result = drive_pipelined(&fleet, &samples, requests);
            fleet.shutdown();
            let (p50, p95, p99, fill) = aggregate(&result.stats);
            report.metric(
                &format!("throughput_rps_b{max_batch}"),
                result.throughput_rps,
            );
            report.metric(&format!("p50_ms_b{max_batch}"), p50);
            report.metric(&format!("p95_ms_b{max_batch}"), p95);
            report.metric(&format!("p99_ms_b{max_batch}"), p99);
            report.metric(&format!("batch_fill_b{max_batch}"), fill);
            table_rows.push(vec![
                max_batch.to_string(),
                format!("{:.0}", result.throughput_rps),
                format!("{p50:.2}"),
                format!("{p95:.2}"),
                format!("{p99:.2}"),
                format!("{fill:.2}"),
                format!("{:.3}", result.hits as f64 / result.total as f64),
            ]);
            curve.push(SeriesPoint {
                x: max_batch as f64,
                mean: result.throughput_rps,
                std: 0.0,
            });
            throughputs.push(result.throughput_rps);
        }
        report.series.push(Series {
            label: "throughput vs max_batch".to_string(),
            points: curve,
        });
        report.metric(
            "batching_speedup",
            throughputs[1] / throughputs[0].max(1e-9),
        );
        report.table(
            "round-robin fleet under load",
            &[
                "max_batch",
                "req/s",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "batch fill",
                "accuracy",
            ],
            table_rows,
        );

        // Redundancy: majority-vote fleets with *matched* variation draws.
        // Both fleets re-deploy to generation 1 with identical RNG
        // streams — the control via `reprogram` (log-normal masks only),
        // the aged one via `recompile_drifted` (the same log-normal masks
        // composed with per-device drift at t = 1e5) — so the drift
        // contribution to vote disagreement is isolated, not confounded
        // with a fresh variation draw.
        let majority_requests = requests / 8;
        let config = ServeConfig::new(32).max_wait(MAX_WAIT).workers(2);
        let majority_fleet = || {
            Fleet::new(
                &model,
                backend.clone(),
                REPLICAS,
                ctx.seed ^ 0xf1ee7,
                RoutePolicy::Majority,
                &sample_dims,
                &config,
            )
        };
        eprintln!("[serving] majority-vote run ({majority_requests} requests) …");
        let fleet = majority_fleet();
        fleet.reprogram();
        let fresh = drive(&fleet, &samples, majority_requests);
        let fresh_rate = fleet.vote_disagreement_rate();
        fleet.shutdown();

        eprintln!("[serving] drifted majority-vote run …");
        let drifted_fleet = majority_fleet();
        drifted_fleet.recompile_drifted(&ConductanceDrift::new(0.05, 0.05, 1.0), DRIFT_T);
        let drifted = drive(&drifted_fleet, &samples, majority_requests);
        let drifted_rate = drifted_fleet.vote_disagreement_rate();
        drifted_fleet.shutdown();

        report.metric("vote_disagreement", fresh_rate);
        report.metric("vote_disagreement_drifted", drifted_rate);
        report.metric("majority_accuracy", fresh.hits as f64 / fresh.total as f64);
        report.metric(
            "majority_accuracy_drifted",
            drifted.hits as f64 / drifted.total as f64,
        );
        report.table(
            "majority-vote fleet health",
            &["deployments", "disagreement", "accuracy"],
            vec![
                vec![
                    "fresh".to_string(),
                    format!("{fresh_rate:.3}"),
                    format!("{:.3}", fresh.hits as f64 / fresh.total as f64),
                ],
                vec![
                    format!("drifted (t = {DRIFT_T:.0e})"),
                    format!("{drifted_rate:.3}"),
                    format!("{:.3}", drifted.hits as f64 / drifted.total as f64),
                ],
            ],
        );

        report.note("Reproduction checks: (1) micro-batching (max_batch = 32) outperforms");
        report.note("per-request serving (max_batch = 1) on the same fleet by amortizing");
        report.note("per-request overhead (queue wakeups, locks, reply scatter) across the");
        report.note("batch; (2) redundant majority routing reports a per-chip");
        report.note("vote-disagreement rate that grows once conductance drift ages the");
        report.note("deployments (matched variation draws, drift isolated).");
        report.note("Throughput rows serve the small MLP head; the majority/drift health");
        report.note("rows serve the trained LeNet fleet.");
        if throughputs[1] <= throughputs[0] {
            report.note(format!(
                "WARNING: batching speedup not observed ({:.0} vs {:.0} req/s)",
                throughputs[1], throughputs[0]
            ));
        }
        report
    }
}
