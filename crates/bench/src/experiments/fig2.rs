//! **Paper Fig. 2**: inference-accuracy degradation of the *uncorrected*
//! networks as weight variation σ grows from 0 to 0.5 (mean ± std over
//! Monte-Carlo deployment samples, four network–dataset pairs).

use super::{Ctx, Experiment};
use crate::profile::Pair;
use crate::report::{ExperimentReport, Series, SeriesPoint};
use cn_analog::montecarlo::McConfig;
use correctnet::engine::{monte_carlo, AnalogBackend};
use correctnet::report::{pct, pct_pm};

/// Fig. 2 regenerator.
pub struct Fig2;

const MC_SEED: u64 = 0xf162;

impl Experiment for Fig2 {
    fn name(&self) -> &'static str {
        "fig2"
    }

    fn title(&self) -> &'static str {
        "Fig. 2: accuracy degradation of uncorrected networks"
    }

    fn description(&self) -> &'static str {
        "accuracy collapse of plainly trained networks across sigma (paper Fig. 2)"
    }

    fn run(&self, ctx: &Ctx) -> ExperimentReport {
        let sigmas = [0.0f32, 0.1, 0.2, 0.3, 0.4, 0.5];
        let mut report = ctx.report(self);
        report.config_str(
            "sigmas",
            sigmas
                .iter()
                .map(|s| format!("{s:.1}"))
                .collect::<Vec<_>>()
                .join(","),
        );
        report.config_num("mc_seed", MC_SEED as f64);

        for pair in Pair::ALL {
            eprintln!("[fig2] running {} …", pair.name());
            let (model, data) = ctx.plain_base(pair);
            let mut rows = Vec::new();
            let mut points = Vec::new();
            for (i, &sigma) in sigmas.iter().enumerate() {
                let mc = McConfig {
                    samples: if sigma == 0.0 {
                        1
                    } else {
                        ctx.scale.mc_samples()
                    },
                    sigma,
                    batch_size: 64,
                    seed: MC_SEED + i as u64,
                };
                let r = monte_carlo(&model, &data.test, &mc, &AnalogBackend::lognormal(sigma));
                rows.push(vec![format!("{sigma:.1}"), pct_pm(r.mean, r.std)]);
                points.push(SeriesPoint {
                    x: sigma as f64,
                    mean: r.mean as f64,
                    std: r.std as f64,
                });
                if sigma == 0.0 {
                    report.metric(&format!("{}.clean", pair.tag()), r.mean as f64);
                } else if sigma == 0.5 {
                    report.metric(&format!("{}.noisy_s05", pair.tag()), r.mean as f64);
                }
            }
            report.series.push(Series {
                label: pair.name().to_string(),
                points,
            });
            report.table(pair.name(), &["sigma", "accuracy (mean ± std)"], rows);
            let paper = pair.paper_row();
            report.note(format!(
                "{}: paper shape {} at σ=0 degrading to {} at σ=0.5; deeper nets degrade harder.",
                pair.name(),
                pct(paper.clean),
                pct(paper.noisy)
            ));
        }
        report.note("Reproduction checks: (1) monotone degradation with σ;");
        report.note("(2) VGG16 (deeper) collapses harder than LeNet-5 at σ=0.5.");
        report
    }
}
