//! **Alloc profile**: heap-allocation counts along the serving hot
//! paths — steady-state [`Session::infer_batch`] on the calling thread
//! and the `cn-serve` worker loop — measured with the
//! [`CountingHeap`] counting allocator.
//!
//! The hard *zero allocations per request* contract is pinned by the
//! dedicated test binaries (`cn-analog/tests/zero_alloc_infer.rs`,
//! `cn-serve/tests/zero_alloc_serve.rs`), which force `CN_THREADS=1`
//! before the first tensor op. This experiment is the observability
//! side of the same harness: it reports allocs/request at whatever
//! thread count the process runs with, so a regression shows up as a
//! number, not just a failed assertion. With more than one GEMM thread
//! the fan-out path hands work to `thread::scope`, which allocates by
//! design — the report stamps the thread count so the numbers stay
//! interpretable.
//!
//! Counting requires the binary to install [`CountingHeap`] as its
//! global allocator; `cn-experiments` does. When it is absent (e.g. a
//! custom harness linking the library), the experiment degrades to a
//! note instead of reporting garbage zeros.

use super::{Ctx, Experiment};
use crate::report::ExperimentReport;
use cn_analog::engine::{EngineBuilder, Session};
use cn_nn::zoo::{lenet5, mlp, LeNetConfig};
use cn_serve::{ServeConfig, Server};
use cn_tensor::alloc::{CountingHeap, ThreadAllocCounter};
use cn_tensor::SeededRng;
use std::sync::Arc;
use std::time::Duration;

/// Allocation-count profiler for the inference and serving hot paths.
pub struct AllocProfile;

/// Steady-state rounds measured per path (after warmup).
const ROUNDS: u64 = 16;
/// Warmup rounds: plan + arena + staging growth, outside the contract.
const WARMUP: usize = 4;

/// The calling thread's allocation counter. Resolved once so the
/// measurement reads (`allocs()`/`bytes()`) are themselves alloc-free —
/// looking it up inside the measured window would charge the lookup's
/// own `String`/`Vec` to the hot path.
fn my_counter() -> Option<&'static ThreadAllocCounter> {
    let name = std::thread::current().name().map(str::to_string);
    CountingHeap::snapshot()
        .into_iter()
        .find(|c| Some(c.name()) == name.as_deref())
}

/// Allocations and bytes charged to `cn-serve-worker-*` threads so far.
fn workers() -> (u64, u64) {
    CountingHeap::snapshot()
        .iter()
        .filter(|c| c.name().starts_with("cn-serve-worker"))
        .fold((0, 0), |(a, b), c| (a + c.allocs(), b + c.bytes()))
}

impl Experiment for AllocProfile {
    fn name(&self) -> &'static str {
        "alloc_profile"
    }

    fn title(&self) -> &'static str {
        "Alloc profile: heap allocations per request on the serving hot paths"
    }

    fn description(&self) -> &'static str {
        "counting-allocator profile of steady-state engine inference and the serve worker loop"
    }

    fn run(&self, ctx: &Ctx) -> ExperimentReport {
        let mut report = ctx.report(self);
        let threads = cn_tensor::parallel::num_threads();
        let counting = CountingHeap::is_counting();
        report.config_num("threads", threads as f64);
        report.config_num("counting_active", if counting { 1.0 } else { 0.0 });
        if !counting {
            report.note("CountingHeap is not this binary's global allocator; allocation");
            report.note("counts are unavailable. Run via `cn-experiments`, which installs it.");
            return report;
        }

        let mut rows = Vec::new();
        let mut row = |report: &mut ExperimentReport,
                       path: &str,
                       key: &str,
                       allocs: u64,
                       bytes: u64,
                       requests: u64| {
            let per_req = allocs as f64 / requests as f64;
            report.metric(&format!("allocs_per_request_{key}"), per_req);
            rows.push(vec![
                path.to_string(),
                requests.to_string(),
                allocs.to_string(),
                format!("{per_req:.3}"),
                bytes.to_string(),
            ]);
        };

        // Engine path: planned Session over an untrained LeNet at the
        // deployment shape, batch 1 and 32, counted on this thread.
        eprintln!("[alloc_profile] engine infer_batch, batch 1 and 32 …");
        let model = lenet5(&LeNetConfig::mnist(3));
        let compiled = EngineBuilder::new(&model).compile().shared();
        let mut session = Session::with_plan(Arc::clone(&compiled), &[1, 28, 28], 32);
        let mut rng = SeededRng::new(ctx.seed ^ 0xa110c);
        let x1 = rng.normal_tensor(&[1, 1, 28, 28], 0.0, 1.0);
        let x32 = rng.normal_tensor(&[32, 1, 28, 28], 0.0, 1.0);
        for _ in 0..WARMUP {
            session.infer_batch(&x1);
            session.infer_batch(&x32);
        }
        let me = my_counter().expect("calling thread has allocated, so its counter exists");
        for (x, key, label) in [
            (&x1, "engine_b1", "engine batch 1"),
            (&x32, "engine_b32", "engine batch 32"),
        ] {
            let (a0, b0) = (me.allocs(), me.bytes());
            for _ in 0..ROUNDS {
                std::hint::black_box(session.infer_batch(x));
            }
            let (a1, b1) = (me.allocs(), me.bytes());
            row(&mut report, label, key, a1 - a0, b1 - b0, ROUNDS);
        }

        // Serve path: one worker over a small MLP head; each round is a
        // pipelined full batch so the worker coalesces at the planned
        // deployment batch. Counted on the worker threads.
        eprintln!("[alloc_profile] serve worker loop …");
        let head = mlp(&[16, 32, 8], 3);
        let config = ServeConfig::new(8)
            .workers(1)
            .max_wait(Duration::from_millis(20));
        let server = Server::over(EngineBuilder::new(&head).compile(), &[16], &config);
        let inputs: Vec<_> = (0..8).map(|_| rng.normal_tensor(&[16], 0.0, 1.0)).collect();
        let round = || {
            let tickets: Vec<_> = inputs
                .iter()
                .map(|x| server.submit(x).expect("submit"))
                .collect();
            for ticket in tickets {
                ticket.wait().expect("reply");
            }
        };
        for _ in 0..WARMUP {
            round();
        }
        let (a0, b0) = workers();
        for _ in 0..ROUNDS {
            round();
        }
        let (a1, b1) = workers();
        server.shutdown();
        row(
            &mut report,
            "serve worker loop",
            "serve_worker",
            a1 - a0,
            b1 - b0,
            ROUNDS * inputs.len() as u64,
        );

        report.table(
            "steady-state allocation profile (warmup excluded)",
            &["path", "requests", "allocs", "allocs/req", "bytes"],
            rows,
        );
        if threads == 1 {
            report.note("Single-thread run: every allocs/req above is contractually zero;");
            report.note("nonzero means the zero-alloc refactor regressed (the test binaries");
            report.note("zero_alloc_infer / zero_alloc_serve pin the same contract).");
        } else {
            report.note(format!(
                "{threads} GEMM threads: fan-out hands work to thread::scope, which"
            ));
            report.note("allocates by design. Set CN_THREADS=1 to check the zero contract.");
        }
        report
    }
}
