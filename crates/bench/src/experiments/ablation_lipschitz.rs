//! **Extension ablation** (not a paper figure): sensitivity of error
//! suppression to its two hyperparameters — the penalty strength β and
//! the spectral target λ (paper uses λ(k=1, σ) from eq. 10).

use super::{Ctx, Experiment};
use crate::profile::{pipeline_config, Pair};
use crate::report::ExperimentReport;
use cn_analog::montecarlo::McConfig;
use cn_nn::metrics::evaluate;
use cn_nn::optim::Adam;
use cn_nn::trainer::{TrainConfig, Trainer};
use correctnet::engine::{monte_carlo, AnalogBackend};
use correctnet::lipschitz::{lambda_for, spectral_norms, LipschitzRegularizer};
use correctnet::report::pct;

/// Lipschitz-hyperparameter ablation regenerator.
pub struct AblationLipschitz;

const SIGMA: f32 = 0.5;
const PIPE_SEED: u64 = 0xab11;
const MC_SEED: u64 = 0xab12;
const NET_SEED: u64 = 0xab13;

impl Experiment for AblationLipschitz {
    fn name(&self) -> &'static str {
        "ablation_lipschitz"
    }

    fn title(&self) -> &'static str {
        "Ablation: Lipschitz regularization hyperparameters (σ = 0.5)"
    }

    fn description(&self) -> &'static str {
        "sensitivity of error suppression to beta and the spectral target lambda (extension)"
    }

    fn run(&self, ctx: &Ctx) -> ExperimentReport {
        let pair = Pair::LeNet5Mnist;
        let lambda_sigma = lambda_for(1.0, SIGMA);
        let mut report = ctx.report(self);
        report.config_num("sigma", SIGMA as f64);
        report.config_str("pair", pair.name());
        report.config_num("lambda_eq10", lambda_sigma as f64);
        report.note(format!(
            "pair: {}; eq. 10 gives λ = {lambda_sigma:.3}",
            pair.name()
        ));

        let data = pair.dataset(ctx.scale);
        let cfg = pipeline_config(ctx.scale, SIGMA, PIPE_SEED);
        let mc = McConfig::new(ctx.scale.mc_samples(), SIGMA, MC_SEED);

        let mut rows = Vec::new();
        for (key, label, beta, lambda) in [
            ("no_reg", "no regularization", 0.0f32, 1.0f32),
            ("beta_1e4", "β=1e-4, λ=λ(σ)", 1e-4, lambda_sigma),
            ("beta_1e3", "β=1e-3, λ=λ(σ) (default)", 1e-3, lambda_sigma),
            ("beta_1e2", "β=1e-2, λ=λ(σ)", 1e-2, lambda_sigma),
            ("parseval", "β=1e-3, λ=1 (Parseval)", 1e-3, 1.0),
        ] {
            eprintln!("[ablation_lipschitz] {label} …");
            // Two-phase protocol: plain pretraining, then regularized
            // fine-tuning (see pipeline docs). These variants deliberately
            // bypass the model cache — the sweep *is* the training
            // experiment.
            let mut model = pair.network(ctx.scale, NET_SEED);
            Trainer::new(TrainConfig::new(cfg.base_epochs, 32, 1)).fit(
                &mut model,
                &data.train,
                &mut Adam::new(cfg.base_lr),
            );
            if beta > 0.0 {
                let reg = LipschitzRegularizer { beta, lambda };
                Trainer::new(TrainConfig::new(cfg.base_epochs / 2, 32, 2))
                    .with_regularizer(move |m| reg.apply(m))
                    .fit(&mut model, &data.train, &mut Adam::new(cfg.base_lr / 2.0));
            }
            let clean = evaluate(&mut model.clone(), &data.test, 64);
            let noisy = monte_carlo(&model, &data.test, &mc, &AnalogBackend::lognormal(mc.sigma));
            let max_norm = spectral_norms(&model)
                .iter()
                .map(|(_, s)| *s)
                .fold(0.0f32, f32::max);
            rows.push(vec![
                label.to_string(),
                pct(clean),
                pct(noisy.mean),
                format!("{max_norm:.2}"),
            ]);
            report.metric(&format!("{key}.clean"), clean as f64);
            report.metric(&format!("{key}.noisy"), noisy.mean as f64);
            report.metric(&format!("{key}.max_spectral_norm"), max_norm as f64);
        }
        report.table(
            "",
            &["configuration", "clean acc", "acc @ σ=0.5", "max σ(W)"],
            rows,
        );
        report.note("Check: moderate β preserves clean accuracy while shrinking the");
        report.note("spectral norms; overly aggressive β trades clean accuracy away.");
        report
    }
}
