//! The experiment catalog: one [`Experiment`] per paper artifact.
//!
//! Every table/figure regenerator implements [`Experiment`] and is listed
//! in [`registry`]. The `cn-experiments` binary resolves names against the
//! registry; the legacy per-figure binaries are thin shims over the same
//! entries.
//!
//! ```
//! let names = cn_bench::experiments::names();
//! assert!(names.contains(&"fig2") && names.contains(&"table1"));
//!
//! let exp = cn_bench::experiments::find("fig7").expect("registered");
//! assert_eq!(exp.name(), "fig7");
//! assert!(cn_bench::experiments::find("fig99").is_none());
//! ```

pub mod ablation_device;
pub mod ablation_lipschitz;
pub mod alloc_profile;
pub mod fig10;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod net_serving;
pub mod serving;
pub mod table1;

use crate::cache::{cached_candidates, lipschitz_base, plain_base, ModelCache};
use crate::profile::{Pair, Scale};
use crate::report::ExperimentReport;
use cn_data::TrainTest;
use cn_nn::Sequential;
use correctnet::candidates::CandidateReport;

/// Shared state handed to every experiment run: the resolved scale
/// profile, the master seed and the trained-model cache (shared across
/// experiments so a sweep trains each base model exactly once).
pub struct Ctx<'a> {
    /// Scale profile of the run.
    pub scale: Scale,
    /// Master seed (feeds the pipeline configs; per-evaluation seeds are
    /// derived constants so cached artifacts stay comparable).
    pub seed: u64,
    /// Trained-model cache shared across experiments.
    pub cache: &'a ModelCache,
}

impl<'a> Ctx<'a> {
    /// Creates a context.
    pub fn new(scale: Scale, seed: u64, cache: &'a ModelCache) -> Ctx<'a> {
        Ctx { scale, seed, cache }
    }

    /// Plainly trained base model (cached) plus the pair's dataset.
    pub fn plain_base(&self, pair: Pair) -> (Sequential, TrainTest) {
        plain_base(self.cache, pair, self.scale, self.seed)
    }

    /// Lipschitz-regularized base model (cached) plus the pair's dataset.
    pub fn lipschitz_base(&self, pair: Pair, sigma: f32) -> (Sequential, TrainTest) {
        lipschitz_base(self.cache, pair, self.scale, sigma, self.seed)
    }

    /// Candidate-layer report for a pair's Lipschitz base (cached).
    pub fn candidates(
        &self,
        pair: Pair,
        sigma: f32,
        base: &Sequential,
        data: &TrainTest,
    ) -> CandidateReport {
        cached_candidates(self.cache, pair, self.scale, sigma, self.seed, base, data)
    }

    /// Report skeleton stamped with this run's identity.
    pub fn report(&self, experiment: &dyn Experiment) -> ExperimentReport {
        let mut report = ExperimentReport::new(
            experiment.name(),
            experiment.title(),
            self.scale.name(),
            self.seed,
        );
        report.config_str("scale", self.scale.name());
        report.config_num("mc_samples", self.scale.mc_samples() as f64);
        report
    }
}

/// A registered paper-artifact regenerator.
pub trait Experiment {
    /// Registry name (`fig2`, `table1`, `ablation_device`, …).
    fn name(&self) -> &'static str;
    /// Which paper artifact this regenerates, for report titles.
    fn title(&self) -> &'static str;
    /// One-line description shown by `cn-experiments list`.
    fn description(&self) -> &'static str;
    /// Runs the experiment and returns its structured report (the runner
    /// stamps the wall clock and writes the JSON file).
    fn run(&self, ctx: &Ctx) -> ExperimentReport;
}

/// All registered experiments, in the catalog order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(table1::Table1),
        Box::new(fig2::Fig2),
        Box::new(fig7::Fig7),
        Box::new(fig8::Fig8),
        Box::new(fig9::Fig9),
        Box::new(fig10::Fig10),
        Box::new(ablation_device::AblationDevice),
        Box::new(ablation_lipschitz::AblationLipschitz),
        Box::new(serving::Serving),
        Box::new(net_serving::NetServing),
        Box::new(alloc_profile::AllocProfile),
    ]
}

/// The registered experiment names, in catalog order.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|e| e.name()).collect()
}

/// Resolves a registry name.
pub fn find(name: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.name() == name)
}

/// Candidate prefix used by the compensation experiments: the first six
/// candidate layers, or layer 0 when the 95 % rule selected none.
pub(crate) fn candidate_prefix(report: &CandidateReport) -> Vec<usize> {
    if report.candidate_count == 0 {
        vec![0]
    } else {
        report.candidates().into_iter().take(6).collect()
    }
}
