//! **Paper Fig. 8**: accuracy at σ = 0.5 versus weight overhead —
//! CorrectNet against weight-replication \[8\], random sparse adaptation
//! \[9\] (each with and without online retraining) and statistical/
//! noise-aware training \[11\], on the two panels the paper shows
//! (LeNet-CIFAR10 and VGG16-CIFAR10).

use super::{candidate_prefix, Ctx, Experiment};
use crate::profile::{pipeline_config, Pair};
use crate::report::{ExperimentReport, Series, SeriesPoint};
use cn_baselines::protection::RetrainConfig;
use cn_baselines::statistical::{train_noise_aware, NoiseAwareConfig};
use cn_baselines::{magnitude_replication, random_sparse_adaptation};
use correctnet::compensation::weight_overhead;
use correctnet::pipeline::CorrectNetStages;
use correctnet::report::pct;

/// Fig. 8 regenerator.
pub struct Fig8;

const SIGMA: f32 = 0.5;
const PIPE_SEED: u64 = 0x0f08;

impl Experiment for Fig8 {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn title(&self) -> &'static str {
        "Fig. 8: accuracy@σ=0.5 vs overhead, CorrectNet vs state of the art"
    }

    fn description(&self) -> &'static str {
        "accuracy-vs-overhead trade-off against replication/sparse/statistical baselines (paper Fig. 8)"
    }

    fn run(&self, ctx: &Ctx) -> ExperimentReport {
        let fractions = [0.02f32, 0.05, 0.15];
        let samples = ctx.scale.mc_samples().min(6);
        let mut report = ctx.report(self);
        report.config_num("sigma", SIGMA as f64);
        report.config_str(
            "fractions",
            fractions
                .iter()
                .map(|f| format!("{f}"))
                .collect::<Vec<_>>()
                .join(","),
        );
        report.config_num("baseline_mc_samples", samples as f64);
        report.config_num("pipeline_seed", PIPE_SEED as f64);

        for pair in [Pair::LeNet5Cifar10, Pair::Vgg16Cifar10] {
            eprintln!("[fig8] running {} …", pair.name());
            let (plain, data) = ctx.plain_base(pair);
            let cfg = pipeline_config(ctx.scale, SIGMA, PIPE_SEED);
            let stages = CorrectNetStages::new(cfg);

            let mut rows: Vec<Vec<String>> = Vec::new();
            let push_point = |rows: &mut Vec<Vec<String>>,
                              series: &mut Vec<SeriesPoint>,
                              label: &str,
                              overhead: f32,
                              mean: f32,
                              std: f32| {
                rows.push(vec![label.to_string(), pct(overhead), pct(mean)]);
                series.push(SeriesPoint {
                    x: overhead as f64,
                    mean: mean as f64,
                    std: std as f64,
                });
            };

            // CorrectNet point: Lipschitz base + compensation on the
            // candidate prefix (budget-capped stand-in for the RL
            // placement, 6% like the search).
            let (base, _) = ctx.lipschitz_base(pair, SIGMA);
            let cand_report = ctx.candidates(pair, SIGMA, &base, &data);
            let candidates = candidate_prefix(&cand_report);
            let plan =
                correctnet::compensation::budgeted_uniform_plan(&base, &candidates, 0.5, 0.06);
            let corrected = stages.build_and_train(&base, &data.train, &plan);
            let cn = stages.evaluate(&corrected, &data.test);
            let mut cn_points = Vec::new();
            push_point(
                &mut rows,
                &mut cn_points,
                "CorrectNet",
                weight_overhead(&corrected),
                cn.mean,
                cn.std,
            );
            report.metric(&format!("{}.correctnet", pair.tag()), cn.mean as f64);
            report.series.push(Series {
                label: format!("{}/CorrectNet", pair.name()),
                points: cn_points,
            });

            // [11]-style statistical training: zero overhead.
            let mut aware = plain.clone();
            train_noise_aware(
                &mut aware,
                &data.train,
                &NoiseAwareConfig {
                    lr: 1e-3,
                    ..NoiseAwareConfig::new(SIGMA, stages.config.comp_epochs, 0x11)
                },
            );
            let stat = stages.evaluate(&aware, &data.test);
            let mut stat_points = Vec::new();
            push_point(
                &mut rows,
                &mut stat_points,
                "[11] statistical training",
                0.0,
                stat.mean,
                stat.std,
            );
            report.series.push(Series {
                label: format!("{}/[11] statistical training", pair.name()),
                points: stat_points,
            });

            // [8]-style magnitude replication, without and with retraining.
            for (label, retrain) in [
                ("[8] replication (no retrain)", None),
                (
                    "[8] replication (online retrain)",
                    Some(RetrainConfig::quick()),
                ),
            ] {
                let points = magnitude_replication(
                    &plain,
                    &data.test,
                    &data.train,
                    &fractions,
                    SIGMA,
                    samples,
                    0x88,
                    retrain,
                );
                let mut curve = Vec::new();
                for p in points {
                    push_point(
                        &mut rows,
                        &mut curve,
                        label,
                        p.fraction,
                        p.result.mean,
                        p.result.std,
                    );
                }
                report.series.push(Series {
                    label: format!("{}/{label}", pair.name()),
                    points: curve,
                });
            }

            // [9]-style random sparse adaptation (defined by online
            // retraining).
            let points = random_sparse_adaptation(
                &plain,
                &data.test,
                &data.train,
                &fractions,
                SIGMA,
                samples,
                0x99,
                Some(RetrainConfig::quick()),
            );
            let mut curve = Vec::new();
            for p in points {
                push_point(
                    &mut rows,
                    &mut curve,
                    "[9] random sparse adaptation",
                    p.fraction,
                    p.result.mean,
                    p.result.std,
                );
            }
            report.series.push(Series {
                label: format!("{}/[9] random sparse adaptation", pair.name()),
                points: curve,
            });

            report.table(
                pair.name(),
                &["method", "overhead", "accuracy @ σ=0.5"],
                rows,
            );
        }
        report.note("Reproduction checks: CorrectNet reaches higher accuracy than the");
        report.note("non-retrained baselines at lower overhead, and is competitive with");
        report.note("online-retrained baselines without needing per-chip retraining.");
        report
    }
}
