//! **Paper Table I**: clean accuracy, collapsed accuracy at σ = 0.5,
//! CorrectNet-recovered accuracy, weight overhead and number of
//! compensated layers for all four network–dataset pairs.
//!
//! The placement is found by the RL search (paper Fig. 6) over the
//! candidate layers from the 95 % rule.

use super::{candidate_prefix, Ctx, Experiment};
use crate::profile::{pipeline_config, Pair};
use crate::report::ExperimentReport;
use cn_nn::metrics::evaluate;
use cn_rl::env::CorrectNetEnv;
use cn_rl::search::{reinforce_search, SearchConfig};
use correctnet::compensation::{compensated_layer_count, weight_overhead};
use correctnet::pipeline::CorrectNetStages;
use correctnet::report::{pct, Table1Row};

/// Table I regenerator.
pub struct Table1;

const SIGMA: f32 = 0.5;
const PIPE_SEED: u64 = 0x7ab1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table I: CorrectNet summary (σ = 0.5)"
    }

    fn description(&self) -> &'static str {
        "clean/collapsed/recovered accuracy, overhead and compensated layers (paper Table I)"
    }

    fn run(&self, ctx: &Ctx) -> ExperimentReport {
        let mut report = ctx.report(self);
        report.config_num("sigma", SIGMA as f64);
        report.config_num("pipeline_seed", PIPE_SEED as f64);
        let episodes = ctx.scale.search_episodes(5);
        report.config_num("rl_episodes", episodes as f64);

        let mut rows = Vec::new();
        for pair in Pair::ALL {
            eprintln!("[table1] running {} …", pair.name());
            let cfg = pipeline_config(ctx.scale, SIGMA, PIPE_SEED);
            let stages = CorrectNetStages::new(cfg);

            // Original (plain) network: σ=0 and σ=0.5 columns.
            let (plain, data) = ctx.plain_base(pair);
            let clean = evaluate(&mut plain.clone(), &data.test, 64);
            let noisy = stages.evaluate(&plain, &data.test);

            // CorrectNet: Lipschitz base + RL-placed compensation.
            let (base, _) = ctx.lipschitz_base(pair, SIGMA);
            let cand_report = ctx.candidates(pair, SIGMA, &base, &data);
            let candidates = candidate_prefix(&cand_report);
            eprintln!(
                "[table1] {}: {} candidate layers",
                pair.name(),
                candidates.len()
            );
            let use_rl = matches!(pair, Pair::Vgg16Cifar100 | Pair::Vgg16Cifar10);
            let search_cfg = SearchConfig {
                episodes,
                rollouts_per_episode: 2,
                ..SearchConfig::new(0.06, 0x5ea7)
            };
            // Proxy budget during the search (fewer compensator epochs,
            // fewer MC samples, training subset); the selected plan is
            // re-trained and re-evaluated at full budget below.
            let mut proxy_cfg = cfg;
            proxy_cfg.comp_epochs = 2;
            proxy_cfg.mc_samples = 6;
            let proxy_stages = CorrectNetStages::new(proxy_cfg);
            let search_train = data.train.take(data.train.len().min(600));
            let search_test = data.test.take(data.test.len().min(200));
            let env_candidates = candidates.clone();
            let mut env = CorrectNetEnv::new(
                proxy_stages,
                &base,
                &search_train,
                &search_test,
                env_candidates,
            );
            // The LeNet pairs have a two-conv candidate structure where the
            // budget-capped uniform plan coincides with what the RL
            // converges to; running the full search there spends minutes to
            // rediscover it, so RL is reserved for the VGG pairs (as in the
            // paper's Fig. 10 discussion).
            let plan = if use_rl {
                let result = reinforce_search(&mut env, &search_cfg);
                env.plan_of(&result.best_ratios)
            } else {
                correctnet::compensation::budgeted_uniform_plan(
                    &base,
                    &candidates,
                    0.5,
                    search_cfg.reward.overhead_limit,
                )
            };
            let corrected_model = stages.build_and_train(&base, &data.train, &plan);
            let corrected = stages.evaluate(&corrected_model, &data.test);

            let row = Table1Row {
                pair: pair.name().to_string(),
                acc_clean: clean,
                acc_noisy: noisy.mean,
                acc_correctnet: corrected.mean,
                overhead: weight_overhead(&corrected_model),
                comp_layers: compensated_layer_count(&corrected_model),
            };
            let paper = pair.paper_row();
            rows.push(vec![
                row.pair.clone(),
                format!("{} / {}", pct(paper.clean), pct(row.acc_clean)),
                format!("{} / {}", pct(paper.noisy), pct(row.acc_noisy)),
                format!("{} / {}", pct(paper.corrected), pct(row.acc_correctnet)),
                format!("{} / {}", pct(paper.overhead), pct(row.overhead)),
                format!("{} / {}", paper.layers, row.comp_layers),
                format!("{:.0}%", 100.0 * row.relative_recovery()),
            ]);
            let tag = pair.tag();
            report.metric(&format!("{tag}.acc_clean"), row.acc_clean as f64);
            report.metric(&format!("{tag}.acc_noisy"), row.acc_noisy as f64);
            report.metric(&format!("{tag}.acc_correctnet"), row.acc_correctnet as f64);
            report.metric(&format!("{tag}.overhead"), row.overhead as f64);
            report.metric(&format!("{tag}.comp_layers"), row.comp_layers as f64);
            report.metric(
                &format!("{tag}.relative_recovery"),
                row.relative_recovery() as f64,
            );
        }

        report.table(
            "",
            &[
                "network-dataset",
                "clean (paper/ours)",
                "σ=0.5 (paper/ours)",
                "CorrectNet (paper/ours)",
                "overhead (paper/ours)",
                "#layers (paper/ours)",
                "recovery",
            ],
            rows,
        );
        report.note("Reproduction checks: CorrectNet recovers a large share of clean");
        report.note("accuracy at ≪10% weight overhead; deeper nets lose more at σ=0.5");
        report.note("and gain more from correction. Absolute values differ (synthetic");
        report.note("data, width-scaled VGG — docs/ARCHITECTURE.md).");
        report
    }
}
