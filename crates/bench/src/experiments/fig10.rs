//! **Paper Fig. 10**: the RL search's explored placements for
//! VGG16-CIFAR100 (overhead vs accuracy cloud), the RL-selected solution,
//! and the exhaustive all-candidates reference.

use super::{Ctx, Experiment};
use crate::profile::{pipeline_config, Pair};
use crate::report::{ExperimentReport, Series, SeriesPoint};
use cn_rl::env::CorrectNetEnv;
use cn_rl::exhaustive::all_layers;
use cn_rl::search::{reinforce_search, SearchConfig};
use correctnet::pipeline::CorrectNetStages;
use correctnet::report::pct;

/// Fig. 10 regenerator.
pub struct Fig10;

const SIGMA: f32 = 0.5;
const PIPE_SEED: u64 = 0x0f10;

impl Experiment for Fig10 {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn title(&self) -> &'static str {
        "Fig. 10: RL search exploration for VGG16-Cifar100 (σ = 0.5)"
    }

    fn description(&self) -> &'static str {
        "REINFORCE placement exploration cloud vs exhaustive reference (paper Fig. 10)"
    }

    fn run(&self, ctx: &Ctx) -> ExperimentReport {
        let mut report = ctx.report(self);
        report.config_num("sigma", SIGMA as f64);
        report.config_num("pipeline_seed", PIPE_SEED as f64);
        let episodes = ctx.scale.search_episodes(8);
        report.config_num("rl_episodes", episodes as f64);

        let pair = Pair::Vgg16Cifar100;
        let cfg = pipeline_config(ctx.scale, SIGMA, PIPE_SEED);
        let (base, data) = ctx.lipschitz_base(pair, SIGMA);
        let cand_report = ctx.candidates(pair, SIGMA, &base, &data);
        // Cap the search space at the first six layers (the paper's RL also
        // searched the first six for VGG16-C100).
        let candidates: Vec<usize> = if cand_report.candidate_count == 0 {
            vec![0, 1]
        } else {
            cand_report.candidates().into_iter().take(6).collect()
        };
        report.config_num("candidate_layers", candidates.len() as f64);
        report.note(format!(
            "candidate layers: first {} of 15 (paper: first 6)",
            candidates.len()
        ));

        let search_cfg = SearchConfig {
            episodes,
            rollouts_per_episode: 2,
            ..SearchConfig::new(0.06, 0xf10a)
        };
        // Proxy budget during the search (the paper's skip trick bounds the
        // expensive evaluations; we additionally shorten compensator
        // training while exploring — every reported point is a real
        // evaluation at this proxy budget, directly comparable across
        // placements).
        let mut proxy_cfg = cfg;
        proxy_cfg.comp_epochs = 2;
        proxy_cfg.mc_samples = 8;
        let proxy_stages = CorrectNetStages::new(proxy_cfg);
        let search_train = data.train.take(data.train.len().min(600));
        let search_test = data.test.take(data.test.len().min(200));
        let mut env =
            CorrectNetEnv::new(proxy_stages, &base, &search_train, &search_test, candidates);
        let result = reinforce_search(&mut env, &search_cfg);

        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut explored_points = Vec::new();
        for p in &result.explored {
            rows.push(vec![
                format!("{:?}", p.ratios),
                pct(p.outcome.overhead),
                pct(p.outcome.acc_mean),
                format!("{:.1}", 100.0 * p.outcome.acc_std),
                format!("{:.3}", p.reward),
            ]);
            explored_points.push(SeriesPoint {
                x: p.outcome.overhead as f64,
                mean: p.outcome.acc_mean as f64,
                std: p.outcome.acc_std as f64,
            });
        }
        // Exhaustive reference: compensate every candidate.
        let exhaustive = all_layers(&mut env, 0.5, &search_cfg.reward);
        rows.push(vec![
            "EXHAUSTIVE (all @0.5)".into(),
            pct(exhaustive.outcome.overhead),
            pct(exhaustive.outcome.acc_mean),
            format!("{:.1}", 100.0 * exhaustive.outcome.acc_std),
            format!("{:.3}", exhaustive.reward),
        ]);

        report.series.push(Series {
            label: "explored placements".into(),
            points: explored_points,
        });
        report.series.push(Series {
            label: "exhaustive reference".into(),
            points: vec![SeriesPoint {
                x: exhaustive.outcome.overhead as f64,
                mean: exhaustive.outcome.acc_mean as f64,
                std: exhaustive.outcome.acc_std as f64,
            }],
        });
        report.table(
            "",
            &[
                "placement (ratios)",
                "overhead",
                "accuracy",
                "std",
                "reward",
            ],
            rows,
        );

        report.metric("best.acc_mean", result.best_outcome.acc_mean as f64);
        report.metric("best.overhead", result.best_outcome.overhead as f64);
        report.metric("exhaustive.acc_mean", exhaustive.outcome.acc_mean as f64);
        report.metric("exhaustive.overhead", exhaustive.outcome.overhead as f64);
        report.metric("env_evaluations", env.evaluations() as f64);
        report.note(format!(
            "RL selected: {:?} → {} at {} overhead ({} env evaluations)",
            result.best_ratios,
            pct(result.best_outcome.acc_mean),
            pct(result.best_outcome.overhead),
            env.evaluations()
        ));
        report.note(format!(
            "exhaustive reference: {} at {} overhead",
            pct(exhaustive.outcome.acc_mean),
            pct(exhaustive.outcome.overhead)
        ));
        report.note("Reproduction checks: RL finds a placement within noise of the");
        report.note("exhaustive accuracy at lower overhead (paper: 67.01% vs 67.14%");
        report.note("at 2.41% vs 4.29% overhead).");
        report
    }
}
