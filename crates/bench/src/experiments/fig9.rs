//! **Paper Fig. 9**: after Lipschitz-constant regularization (no
//! compensation), variations of σ = 0.5 are injected from weight layer `i`
//! to the last layer; accuracy vs the starting layer `i` shows that
//! late-layer variations are suppressed while early layers stay sensitive
//! — motivating compensation of the early layers only.

use super::{Ctx, Experiment};
use crate::profile::Pair;
use crate::report::{ExperimentReport, Series, SeriesPoint};
use correctnet::report::pct;

/// Fig. 9 regenerator.
pub struct Fig9;

const SIGMA: f32 = 0.5;

impl Experiment for Fig9 {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn title(&self) -> &'static str {
        "Fig. 9: Lipschitz regularization vs suffix variations (σ = 0.5)"
    }

    fn description(&self) -> &'static str {
        "suffix-variation sweep behind the 95% candidate rule (paper Fig. 9)"
    }

    fn run(&self, ctx: &Ctx) -> ExperimentReport {
        let mut report = ctx.report(self);
        report.config_num("sigma", SIGMA as f64);

        for pair in [Pair::Vgg16Cifar100, Pair::Vgg16Cifar10, Pair::LeNet5Cifar10] {
            eprintln!("[fig9] running {} …", pair.name());
            let (model, data) = ctx.lipschitz_base(pair, SIGMA);
            let cand_report = ctx.candidates(pair, SIGMA, &model, &data);

            let mut rows = Vec::new();
            let mut points = Vec::new();
            for p in &cand_report.sweep {
                rows.push(vec![
                    p.start.to_string(),
                    pct(p.mean),
                    format!("{:.1}", 100.0 * p.std),
                    if p.mean >= 0.95 * cand_report.clean_accuracy {
                        "ok".to_string()
                    } else {
                        "below 95%".to_string()
                    },
                ]);
                points.push(SeriesPoint {
                    x: p.start as f64,
                    mean: p.mean as f64,
                    std: p.std as f64,
                });
            }
            report.series.push(Series {
                label: pair.name().to_string(),
                points,
            });
            report.metric(
                &format!("{}.clean", pair.tag()),
                cand_report.clean_accuracy as f64,
            );
            report.metric(
                &format!("{}.candidate_count", pair.tag()),
                cand_report.candidate_count as f64,
            );
            report.table(
                &format!(
                    "{} (clean {})",
                    pair.name(),
                    pct(cand_report.clean_accuracy)
                ),
                &["start layer", "accuracy", "std", "vs 95% bar"],
                rows,
            );
            report.note(format!(
                "{}: candidates for compensation are the first {} weight layers",
                pair.name(),
                cand_report.candidate_count
            ));
        }
        report.note("Reproduction checks: (1) accuracy rises as the starting layer moves");
        report.note("back (late-layer variations are suppressed); (2) only a prefix of");
        report.note("early layers falls below the 95% bar (paper: 6 of 15 for VGG16-C100).");
        report
    }
}
