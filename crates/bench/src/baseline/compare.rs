//! The statistical regression gate between two [`Baseline`]s.
//!
//! A benchmark only counts as **regressed** when two independent
//! conditions hold:
//!
//! 1. **Magnitude** — the relative mean delta exceeds the configured
//!    threshold: `(mean_new − mean_old) / mean_old > threshold`.
//! 2. **Separation** — a rank/overlap test on the raw sample vectors
//!    agrees the two distributions genuinely moved apart. The test is
//!    the Vargha–Delaney A measure (the Mann–Whitney U statistic
//!    normalised to `[0, 1]`): the probability that a randomly chosen
//!    candidate sample is slower than a randomly chosen baseline sample,
//!    ties counting half. `A = 0.5` means fully overlapping
//!    distributions; regression requires `A ≥ min_effect`.
//!
//! The two-condition gate is what keeps a 10-sample bench from flaking
//! CI: a 3 % wobble fails the magnitude gate, and a single slow outlier
//! dragging the mean past the threshold fails the separation gate
//! (one outlier in ten samples moves A to ≈ 0.55, far below 0.75) —
//! while a genuine 25 % slowdown shifts every sample and passes both.
//!
//! Improvements are detected symmetrically (mean delta below
//! `−threshold`, `A ≤ 1 − min_effect`) and reported, but never fail the
//! gate. Benchmarks present in only one baseline are reported explicitly
//! rather than silently dropped.

use super::{Baseline, BenchRecord};
use correctnet::export::json::Json;
use std::collections::BTreeMap;

/// Knobs of the regression gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Relative mean-delta threshold (0.2 = fail beyond +20 %).
    pub threshold: f64,
    /// Minimum Vargha–Delaney A for a delta to count as separated.
    pub min_effect: f64,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig {
            threshold: 0.2,
            min_effect: 0.75,
        }
    }
}

/// Per-benchmark outcome of the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Mean delta beyond the threshold and the rank test confirms the
    /// separation — fails the gate.
    Regressed,
    /// Mean delta below `−threshold` with confirmed separation.
    Improved,
    /// Mean delta within the threshold band.
    Unchanged,
    /// Mean delta beyond the threshold but the sample distributions
    /// overlap — attributed to noise, not gated.
    NoisyDelta,
}

impl Verdict {
    /// Stable lower-case name used in JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Regressed => "regressed",
            Verdict::Improved => "improved",
            Verdict::Unchanged => "unchanged",
            Verdict::NoisyDelta => "noisy-delta",
        }
    }
}

/// One matched benchmark's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// The benchmark's full hierarchical id.
    pub full_id: String,
    /// Baseline mean (ns/iter).
    pub mean_old_ns: f64,
    /// Candidate mean (ns/iter).
    pub mean_new_ns: f64,
    /// `(mean_new − mean_old) / mean_old`.
    pub rel_delta: f64,
    /// Vargha–Delaney A: P(candidate sample > baseline sample).
    pub effect: f64,
    /// Gate outcome.
    pub verdict: Verdict,
}

/// The full outcome of comparing a candidate run against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Name of the reference baseline.
    pub baseline_name: String,
    /// Name of the candidate run.
    pub candidate_name: String,
    /// The gate configuration used.
    pub config: CompareConfig,
    /// Matched benchmarks in full-id order.
    pub comparisons: Vec<BenchComparison>,
    /// Benchmarks recorded in the baseline but absent from the candidate.
    pub only_in_baseline: Vec<String>,
    /// Benchmarks recorded in the candidate but absent from the baseline.
    pub only_in_candidate: Vec<String>,
    /// The two runs come from different host fingerprints.
    pub host_mismatch: bool,
}

impl CompareReport {
    /// The benchmarks that failed the gate.
    pub fn regressions(&self) -> Vec<&BenchComparison> {
        self.comparisons
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
            .collect()
    }

    /// Whether the gate fails (any regression).
    pub fn has_regressions(&self) -> bool {
        !self.regressions().is_empty()
    }

    fn count(&self, verdict: Verdict) -> usize {
        self.comparisons
            .iter()
            .filter(|c| c.verdict == verdict)
            .count()
    }

    /// Human-readable rendering, one line per benchmark plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench compare: candidate `{}` vs baseline `{}` (threshold +{:.0}%, min effect {:.2})\n",
            self.candidate_name,
            self.baseline_name,
            self.config.threshold * 100.0,
            self.config.min_effect,
        ));
        if self.host_mismatch {
            out.push_str(
                "warning: baselines were recorded on different hosts; absolute deltas are indicative only\n",
            );
        }
        for c in &self.comparisons {
            out.push_str(&format!(
                "{:<11} {}: mean {} -> {} ({:+.1}%, effect {:.2})\n",
                c.verdict.name(),
                c.full_id,
                fmt_ns(c.mean_old_ns),
                fmt_ns(c.mean_new_ns),
                c.rel_delta * 100.0,
                c.effect,
            ));
        }
        for id in &self.only_in_baseline {
            out.push_str(&format!("removed     {id}: in baseline only\n"));
        }
        for id in &self.only_in_candidate {
            out.push_str(&format!("added       {id}: in candidate only\n"));
        }
        out.push_str(&format!(
            "summary: {} compared, {} regressed, {} improved, {} noisy, {} unchanged, {} removed, {} added\n",
            self.comparisons.len(),
            self.count(Verdict::Regressed),
            self.count(Verdict::Improved),
            self.count(Verdict::NoisyDelta),
            self.count(Verdict::Unchanged),
            self.only_in_baseline.len(),
            self.only_in_candidate.len(),
        ));
        out
    }

    /// Machine-readable rendering (the `--format json` output).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::num(1.0)),
            ("kind", Json::str("bench-compare")),
            ("baseline", Json::str(&self.baseline_name)),
            ("candidate", Json::str(&self.candidate_name)),
            ("threshold", Json::num(self.config.threshold)),
            ("min_effect", Json::num(self.config.min_effect)),
            ("host_mismatch", Json::Bool(self.host_mismatch)),
            (
                "comparisons",
                Json::arr(self.comparisons.iter().map(|c| {
                    Json::obj([
                        ("id", Json::str(&c.full_id)),
                        ("verdict", Json::str(c.verdict.name())),
                        ("mean_old_ns", Json::num(c.mean_old_ns)),
                        ("mean_new_ns", Json::num(c.mean_new_ns)),
                        ("rel_delta", Json::num(c.rel_delta)),
                        ("effect", Json::num(c.effect)),
                    ])
                })),
            ),
            (
                "only_in_baseline",
                Json::arr(self.only_in_baseline.iter().map(Json::str)),
            ),
            (
                "only_in_candidate",
                Json::arr(self.only_in_candidate.iter().map(Json::str)),
            ),
            ("regressed", Json::Bool(self.has_regressions())),
        ])
    }
}

/// The Vargha–Delaney A measure: the probability that a random sample
/// from `new` exceeds a random sample from `old`, ties counting half.
/// `0.5` = fully overlapping; `1.0` = every new sample is slower than
/// every old sample. Depends only on ranks, so it is invariant under
/// sample permutation and monotone transforms.
pub fn a_statistic(new: &[f64], old: &[f64]) -> f64 {
    if new.is_empty() || old.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &n in new {
        for &o in old {
            if n > o {
                wins += 1.0;
            } else if n == o {
                wins += 0.5;
            }
        }
    }
    wins / (new.len() * old.len()) as f64
}

/// Applies the two-condition gate to one pair of sample vectors.
pub fn judge(old: &BenchRecord, new: &BenchRecord, config: &CompareConfig) -> BenchComparison {
    let mean_old = old.mean_ns();
    let mean_new = new.mean_ns();
    let rel_delta = if mean_old > 0.0 && mean_old.is_finite() {
        (mean_new - mean_old) / mean_old
    } else {
        0.0
    };
    let effect = a_statistic(&new.samples_ns, &old.samples_ns);
    let verdict = if rel_delta > config.threshold {
        if effect >= config.min_effect {
            Verdict::Regressed
        } else {
            Verdict::NoisyDelta
        }
    } else if rel_delta < -config.threshold {
        if effect <= 1.0 - config.min_effect {
            Verdict::Improved
        } else {
            Verdict::NoisyDelta
        }
    } else {
        Verdict::Unchanged
    };
    BenchComparison {
        full_id: old.full_id(),
        mean_old_ns: mean_old,
        mean_new_ns: mean_new,
        rel_delta,
        effect,
        verdict,
    }
}

/// Compares `candidate` against `baseline`, matching benchmarks by their
/// hierarchical full id. Benchmarks present on only one side are listed
/// in the report (never silently dropped).
pub fn compare(baseline: &Baseline, candidate: &Baseline, config: &CompareConfig) -> CompareReport {
    let old: BTreeMap<String, &BenchRecord> = baseline
        .benchmarks
        .iter()
        .map(|b| (b.full_id(), b))
        .collect();
    let new: BTreeMap<String, &BenchRecord> = candidate
        .benchmarks
        .iter()
        .map(|b| (b.full_id(), b))
        .collect();
    let comparisons = old
        .iter()
        .filter_map(|(id, o)| new.get(id).map(|n| judge(o, n, config)))
        .collect();
    CompareReport {
        baseline_name: baseline.name.clone(),
        candidate_name: candidate.name.clone(),
        config: *config,
        comparisons,
        only_in_baseline: old
            .keys()
            .filter(|k| !new.contains_key(*k))
            .cloned()
            .collect(),
        only_in_candidate: new
            .keys()
            .filter(|k| !old.contains_key(*k))
            .cloned()
            .collect(),
        host_mismatch: baseline.host != candidate.host,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, samples: &[f64]) -> BenchRecord {
        BenchRecord {
            workspace: "cn-bench".to_string(),
            bench: "gemm".to_string(),
            group: "gemm_packed".to_string(),
            id: id.to_string(),
            iters_per_sample: 4,
            samples_ns: samples.to_vec(),
        }
    }

    #[test]
    fn identical_samples_are_unchanged() {
        let old = record("sq", &[100.0, 110.0, 105.0]);
        let c = judge(&old, &old, &CompareConfig::default());
        assert_eq!(c.verdict, Verdict::Unchanged);
        assert_eq!(c.rel_delta, 0.0);
        assert_eq!(c.effect, 0.5);
    }

    #[test]
    fn clean_two_x_slowdown_regresses() {
        let old = record("sq", &[100.0, 110.0, 105.0]);
        let new = record("sq", &[200.0, 220.0, 210.0]);
        let c = judge(&old, &new, &CompareConfig::default());
        assert_eq!(c.verdict, Verdict::Regressed);
        assert_eq!(c.effect, 1.0);
        assert!((c.rel_delta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outlier_driven_mean_delta_is_noisy_not_regressed() {
        // Nine steady samples and one 4× outlier: mean is +30% (past the
        // threshold) but the distributions overlap — A ≈ 0.55.
        let old = record("sq", &[100.0; 10]);
        let mut samples = [100.0; 10];
        samples[9] = 400.0;
        let new = record("sq", &samples);
        let c = judge(&old, &new, &CompareConfig::default());
        assert!(
            c.rel_delta > 0.2,
            "mean delta {} should exceed gate",
            c.rel_delta
        );
        assert_eq!(c.verdict, Verdict::NoisyDelta);
    }

    #[test]
    fn clean_speedup_is_improved() {
        let old = record("sq", &[200.0, 210.0, 205.0]);
        let new = record("sq", &[100.0, 105.0, 102.0]);
        let c = judge(&old, &new, &CompareConfig::default());
        assert_eq!(c.verdict, Verdict::Improved);
        assert_eq!(c.effect, 0.0);
    }

    #[test]
    fn a_statistic_counts_ties_half() {
        assert_eq!(a_statistic(&[1.0], &[1.0]), 0.5);
        assert_eq!(a_statistic(&[2.0], &[1.0]), 1.0);
        assert_eq!(a_statistic(&[1.0], &[2.0]), 0.0);
        assert_eq!(a_statistic(&[], &[1.0]), 0.5);
    }
}
