//! `cn-experiments` — the unified experiment runner CLI.
//!
//! ```text
//! cn-experiments list
//! cn-experiments run <name>... | all [--scale quick|default|full]
//!                                    [--out DIR | --no-out]
//!                                    [--cache DIR] [--seed N]
//! cn-experiments validate <file.json>...
//! ```
//!
//! `run` resolves names against the experiment registry, shares one
//! trained-model cache across the sweep, prints the human-readable tables
//! and writes one JSON report per experiment
//! (`<out>/<name>_<scale>.json`, schema in `cn_bench::report`).
//! `validate` parses report files back through the schema and fails on
//! any mismatch — CI uses it to keep the schema stable.

use cn_bench::report::ExperimentReport;
use cn_bench::runner::{run_many, RunOptions};
use cn_bench::Scale;
use cn_tensor::alloc::CountingHeap;
use correctnet::export::json::Json;
use std::path::PathBuf;

/// The `alloc_profile` experiment reads per-thread allocation counters,
/// which only exist when the binary installs the counting allocator.
/// Two relaxed atomic bumps per alloc — negligible next to the kernels
/// the other experiments time.
#[global_allocator]
static ALLOC: CountingHeap = CountingHeap::new();

const USAGE: &str = "\
usage:
  cn-experiments list
  cn-experiments run <name>... | all [--scale quick|default|full]
                                     [--out DIR | --no-out]
                                     [--cache DIR] [--seed N]
  cn-experiments validate <file.json>...

`--scale` overrides the CN_SCALE environment variable (default: quick).
Reports land in `results/` unless --out/--no-out say otherwise; trained
models are cached under `target/cn_models/` (override with --cache).";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            println!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

fn cmd_list() -> i32 {
    println!("registered experiments:\n");
    for exp in cn_bench::experiments::registry() {
        println!("  {:<20} {}", exp.name(), exp.description());
    }
    println!("\nrun one with: cn-experiments run <name> [--scale quick|default|full]");
    0
}

fn cmd_run(args: &[String]) -> i32 {
    let mut names: Vec<String> = Vec::new();
    let mut opts = RunOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--scale needs a value\n\n{USAGE}");
                    return 2;
                };
                match Scale::parse(value) {
                    Some(scale) => opts.scale = scale,
                    None => {
                        eprintln!("unknown scale `{value}` (quick|default|full)");
                        return 2;
                    }
                }
                i += 2;
            }
            "--out" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--out needs a directory\n\n{USAGE}");
                    return 2;
                };
                opts.out_dir = Some(PathBuf::from(value));
                i += 2;
            }
            "--no-out" => {
                opts.out_dir = None;
                i += 1;
            }
            "--cache" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--cache needs a directory\n\n{USAGE}");
                    return 2;
                };
                opts.cache_dir = PathBuf::from(value);
                i += 2;
            }
            "--seed" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--seed needs a value\n\n{USAGE}");
                    return 2;
                };
                match parse_seed(value) {
                    Some(seed) => opts.seed = seed,
                    None => {
                        eprintln!("bad seed `{value}`");
                        return 2;
                    }
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`\n\n{USAGE}");
                return 2;
            }
            name => {
                names.push(name.to_string());
                i += 1;
            }
        }
    }
    if names.iter().any(|n| n == "all") {
        names = cn_bench::experiments::names()
            .into_iter()
            .map(str::to_string)
            .collect();
    }
    if names.is_empty() {
        eprintln!("no experiment named\n\n{USAGE}");
        return 2;
    }
    match run_many(&names, &opts) {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn parse_seed(value: &str) -> Option<u64> {
    if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        value.parse().ok()
    }
}

fn cmd_validate(files: &[String]) -> i32 {
    if files.is_empty() {
        eprintln!("validate needs at least one report file\n\n{USAGE}");
        return 2;
    }
    let mut failures = 0;
    for file in files {
        match validate_file(file) {
            Ok(report) => println!(
                "{file}: ok (experiment {}, scale {}, {} series, {} table(s))",
                report.experiment,
                report.scale,
                report.series.len(),
                report.tables.len()
            ),
            Err(e) => {
                eprintln!("{file}: INVALID — {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        0
    } else {
        1
    }
}

fn validate_file(path: &str) -> Result<ExperimentReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let json = Json::parse(&text).map_err(|e| e.to_string())?;
    ExperimentReport::from_json(&json)
}
