//! Regenerates **paper Fig. 10**: the RL search's explored placements for
//! VGG16-CIFAR100 (overhead vs accuracy cloud), the RL-selected solution,
//! and the exhaustive all-candidates reference.
//!
//! ```bash
//! cargo run -p cn-bench --release --bin fig10
//! ```

use cn_bench::{lipschitz_base, pipeline_config, Pair, Scale};
use cn_rl::env::CorrectNetEnv;
use cn_rl::exhaustive::all_layers;
use cn_rl::search::{reinforce_search, SearchConfig};
use correctnet::pipeline::CorrectNetStages;
use correctnet::report::{pct, render_table};

fn main() {
    let scale = Scale::from_env();
    let sigma = 0.5;
    println!("== Fig. 10: RL search exploration for VGG16-Cifar100 (σ = {sigma}) ==");
    println!("scale: {scale:?}\n");

    let pair = Pair::Vgg16Cifar100;
    let cfg = pipeline_config(scale, sigma, 0x0f10);
    let _stages = CorrectNetStages::new(cfg);
    let (base, data) = lipschitz_base(pair, scale, sigma);
    let report = cn_bench::cached_candidates(pair, scale, sigma, &base, &data);
    // Cap the search space at the first six layers (the paper's RL also
    // searched the first six for VGG16-C100).
    let candidates: Vec<usize> = if report.candidate_count == 0 {
        vec![0, 1]
    } else {
        report.candidates().into_iter().take(6).collect()
    };
    println!(
        "candidate layers: first {} of 15 (paper: first 6)\n",
        candidates.len()
    );

    let search_cfg = SearchConfig {
        episodes: match scale {
            Scale::Quick => 8,
            Scale::Full => 30,
        },
        rollouts_per_episode: 2,
        ..SearchConfig::new(0.06, 0xf10a)
    };
    // Proxy budget during the search (the paper's skip trick bounds the
    // expensive evaluations; we additionally shorten compensator training
    // while exploring — every reported point is a real evaluation at this
    // proxy budget, directly comparable across placements).
    let mut proxy_cfg = cfg;
    proxy_cfg.comp_epochs = 2;
    proxy_cfg.mc_samples = 8;
    let proxy_stages = CorrectNetStages::new(proxy_cfg);
    let search_train = data.train.take(data.train.len().min(600));
    let search_test = data.test.take(data.test.len().min(200));
    let mut env = CorrectNetEnv::new(proxy_stages, &base, &search_train, &search_test, candidates);
    let result = reinforce_search(&mut env, &search_cfg);

    let mut rows: Vec<Vec<String>> = result
        .explored
        .iter()
        .map(|p| {
            vec![
                format!("{:?}", p.ratios),
                pct(p.outcome.overhead),
                pct(p.outcome.acc_mean),
                format!("{:.1}", 100.0 * p.outcome.acc_std),
                format!("{:.3}", p.reward),
            ]
        })
        .collect();
    // Exhaustive reference: compensate every candidate.
    let exhaustive = all_layers(&mut env, 0.5, &search_cfg.reward);
    rows.push(vec![
        "EXHAUSTIVE (all @0.5)".into(),
        pct(exhaustive.outcome.overhead),
        pct(exhaustive.outcome.acc_mean),
        format!("{:.1}", 100.0 * exhaustive.outcome.acc_std),
        format!("{:.3}", exhaustive.reward),
    ]);

    println!(
        "{}",
        render_table(
            &[
                "placement (ratios)",
                "overhead",
                "accuracy",
                "std",
                "reward"
            ],
            &rows
        )
    );
    println!(
        "\nRL selected: {:?} → {} at {} overhead ({} env evaluations)",
        result.best_ratios,
        pct(result.best_outcome.acc_mean),
        pct(result.best_outcome.overhead),
        env.evaluations()
    );
    println!(
        "exhaustive reference: {} at {} overhead",
        pct(exhaustive.outcome.acc_mean),
        pct(exhaustive.outcome.overhead)
    );
    println!("\nReproduction checks: RL finds a placement within noise of the");
    println!("exhaustive accuracy at lower overhead (paper: 67.01% vs 67.14%");
    println!("at 2.41% vs 4.29% overhead).");
}
