//! Regenerates **paper Fig. 7**: CorrectNet accuracy (trained once at
//! σ = 0.5) versus the original network across the variation sweep
//! σ ∈ {0 … 0.5}, for all four pairs.
//!
//! ```bash
//! cargo run -p cn-bench --release --bin fig7
//! ```

use cn_analog::montecarlo::{mc_accuracy, McConfig};
use cn_bench::{lipschitz_base, pipeline_config, plain_base, Pair, Scale};
use correctnet::compensation::weight_overhead;
use correctnet::pipeline::CorrectNetStages;
use correctnet::report::{pct_pm, render_table};

fn main() {
    let scale = Scale::from_env();
    let train_sigma = 0.5;
    let sigmas = [0.0f32, 0.2, 0.35, 0.5];
    println!("== Fig. 7: CorrectNet vs original across σ (trained at σ = {train_sigma}) ==");
    println!("scale: {scale:?}\n");

    for pair in Pair::ALL {
        eprintln!("[fig7] running {} …", pair.name());
        let cfg = pipeline_config(scale, train_sigma, 0x0f07);
        let stages = CorrectNetStages::new(cfg);
        let (plain, data) = plain_base(pair, scale);
        let (base, _) = lipschitz_base(pair, scale, train_sigma);

        // Compensation on the candidate prefix at ratio 0.5 (the trained
        // CorrectNet model reused across the whole sweep, as in the paper).
        let report = cn_bench::cached_candidates(pair, scale, train_sigma, &base, &data);
        let candidates: Vec<usize> = if report.candidate_count == 0 {
            vec![0]
        } else {
            report.candidates().into_iter().take(6).collect()
        };
        // Budget-capped stand-in for the RL placement (6% like the search).
        let plan = correctnet::compensation::budgeted_uniform_plan(&base, &candidates, 0.5, 0.06);
        let corrected = stages.build_and_train(&base, &data.train, &plan);

        // Sweep on a 200-image subset (10 MC samples) — 12 curves × 6 σ
        // points over the full test set would dominate the runtime without
        // changing the curve shapes.
        let sweep_test = data.test.take(data.test.len().min(200));
        let mut rows = Vec::new();
        for (i, &sigma) in sigmas.iter().enumerate() {
            let mc = McConfig {
                samples: if sigma == 0.0 {
                    1
                } else {
                    scale.mc_samples().min(10)
                },
                sigma,
                batch_size: 64,
                seed: 0x0f70 + i as u64,
            };
            let orig = mc_accuracy(&plain, &sweep_test, &mc);
            let corr = mc_accuracy(&corrected, &sweep_test, &mc);
            rows.push(vec![
                format!("{sigma:.1}"),
                pct_pm(orig.mean, orig.std),
                pct_pm(corr.mean, corr.std),
            ]);
        }
        println!(
            "--- {} (compensation overhead {:.2}%) ---",
            pair.name(),
            100.0 * weight_overhead(&corrected)
        );
        println!(
            "{}",
            render_table(&["sigma", "original", "CorrectNet"], &rows)
        );
        println!();
    }
    println!("Reproduction checks: the corrected curve dominates the original");
    println!("at every σ > 0 and stays nearly flat where the original collapses.");
}
