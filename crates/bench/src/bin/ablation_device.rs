//! **Extension ablation** (not a paper figure): does the paper's
//! weight-level log-normal model (eq. 1–2) agree with a device-level
//! crossbar simulation? Compares accuracy under
//!
//! 1. weight-level log-normal variation,
//! 2. conductance-level programming variation on differential pairs,
//! 3. conductance-level + 32-level quantization,
//! 4. weight-level + stuck-at faults,
//! 5. weight-level + retention drift (1000× the programming age),
//! 6. weight-level + static IR-drop attenuation,
//!
//! validating the substitution argument of DESIGN.md §4 and probing the
//! non-idealities the paper leaves to future work.
//!
//! ```bash
//! cargo run -p cn-bench --release --bin ablation_device
//! ```

use cn_analog::cell::CellSpec;
use cn_analog::deployment::DeploymentMode;
use cn_analog::drift::ConductanceDrift;
use cn_analog::faults::StuckFaults;
use cn_analog::irdrop::IrDrop;
use cn_analog::montecarlo::{mc_accuracy_mode, McConfig};
use cn_bench::{plain_base, Pair, Scale};
use correctnet::report::{pct_pm, render_table};

fn main() {
    let scale = Scale::from_env();
    println!("== Ablation: weight-level vs device-level variation models ==");
    println!("scale: {scale:?}\n");

    let (model, data) = plain_base(Pair::LeNet5Mnist, scale);
    let mut rows = Vec::new();
    for sigma in [0.1f32, 0.3, 0.5] {
        let mc = McConfig::new(scale.mc_samples(), sigma, 0xab1a);
        let modes: [(&str, DeploymentMode); 6] = [
            (
                "weight log-normal (paper)",
                DeploymentMode::WeightLognormal { sigma },
            ),
            (
                "conductance pairs",
                DeploymentMode::Conductance {
                    spec: CellSpec {
                        prog_sigma: sigma,
                        ..CellSpec::ideal(1.0, 100.0)
                    },
                    tile_size: 128,
                },
            ),
            (
                "conductance + 32 levels",
                DeploymentMode::Conductance {
                    spec: CellSpec {
                        prog_sigma: sigma,
                        levels: Some(32),
                        ..CellSpec::ideal(1.0, 100.0)
                    },
                    tile_size: 128,
                },
            ),
            (
                "log-normal + 2% stuck-at-0",
                DeploymentMode::LognormalWithFaults {
                    sigma,
                    faults: StuckFaults::new(0.02, 0.0, 0.0),
                },
            ),
            (
                "log-normal + drift (t=1000·t0)",
                DeploymentMode::LognormalWithDrift {
                    sigma,
                    drift: ConductanceDrift::new(0.02, 0.005, 1.0),
                    t: 1000.0,
                },
            ),
            (
                "log-normal + IR drop (α=0.15)",
                DeploymentMode::LognormalWithIrDrop {
                    sigma,
                    irdrop: IrDrop::new(0.15),
                },
            ),
        ];
        for (label, mode) in modes {
            let r = mc_accuracy_mode(&model, &data.test, &mc, &mode);
            rows.push(vec![
                format!("{sigma:.1}"),
                label.to_string(),
                pct_pm(r.mean, r.std),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["sigma", "variation model", "accuracy"], &rows)
    );
    println!("\nCheck: the four models agree to a few accuracy points at each σ,");
    println!("so conclusions drawn with the paper's weight-level model carry");
    println!("over to the device-level substrate.");
}
