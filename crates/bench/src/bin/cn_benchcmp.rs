//! `cn-benchcmp` — save, list and statistically compare bench baselines.
//!
//! ```text
//! cn-benchcmp save --name NAME --jsonl FILE [--dir DIR] [--workspace W]
//! cn-benchcmp compare BASELINE CANDIDATE [--dir DIR] [--threshold F]
//!                                        [--min-effect F] [--format human|json]
//! cn-benchcmp list [--dir DIR]
//! ```
//!
//! `save` ingests the criterion shim's `CN_BENCH_JSONL` feed and writes
//! `DIR/BENCH_<NAME>.json` (schema in `cn_bench::baseline`). `compare`
//! resolves each positional argument either as a baseline *name*
//! (`DIR/BENCH_<arg>.json`) or, when it contains a path separator or
//! `.json` suffix, as a file path; it exits non-zero when any benchmark
//! fails the statistical gate. `--format json` mirrors `cn-lint`'s
//! machine-readable CI output.
//!
//! Exit codes: 0 = no regression, 1 = regression(s) found, 2 = usage or
//! I/O error.

use cn_bench::baseline::compare::{compare, CompareConfig};
use cn_bench::baseline::Baseline;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  cn-benchcmp save --name NAME --jsonl FILE [--dir DIR] [--workspace W]
  cn-benchcmp compare BASELINE CANDIDATE [--dir DIR] [--threshold F]
                                         [--min-effect F] [--format human|json]
  cn-benchcmp list [--dir DIR]

BASELINE/CANDIDATE are baseline names (resolved to DIR/BENCH_<name>.json)
or explicit .json paths. DIR defaults to the workspace root.
Exit codes: 0 = no regression, 1 = regression(s), 2 = usage/IO error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("save") => cmd_save(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            println!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("cn-benchcmp: unknown command `{other}`\n\n{USAGE}");
            2
        }
    };
    ExitCode::from(code)
}

/// The default baseline directory: the workspace root (where the
/// committed `BENCH_*.json` trajectory lives).
fn default_dir() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("Cargo.toml").exists() && cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A positional baseline argument: a name unless it looks like a path.
fn resolve(arg: &str, dir: &std::path::Path) -> PathBuf {
    if arg.ends_with(".json") || arg.contains('/') || arg.contains('\\') {
        PathBuf::from(arg)
    } else {
        dir.join(Baseline::file_name(arg))
    }
}

fn flag_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    match args.get(*i + 1) {
        Some(value) => {
            *i += 2;
            Ok(value.clone())
        }
        None => Err(format!("{flag} needs a value")),
    }
}

fn cmd_save(args: &[String]) -> u8 {
    let mut name: Option<String> = None;
    let mut jsonl: Option<PathBuf> = None;
    let mut dir = default_dir();
    let mut workspace = "cn-bench".to_string();
    let mut i = 0;
    while i < args.len() {
        let result = match args[i].as_str() {
            "--name" => flag_value(args, &mut i, "--name").map(|v| name = Some(v)),
            "--jsonl" => {
                flag_value(args, &mut i, "--jsonl").map(|v| jsonl = Some(PathBuf::from(v)))
            }
            "--dir" => flag_value(args, &mut i, "--dir").map(|v| dir = PathBuf::from(v)),
            "--workspace" => flag_value(args, &mut i, "--workspace").map(|v| workspace = v),
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(msg) = result {
            eprintln!("cn-benchcmp: {msg}\n\n{USAGE}");
            return 2;
        }
    }
    let (Some(name), Some(jsonl)) = (name, jsonl) else {
        eprintln!("cn-benchcmp: save needs --name and --jsonl\n\n{USAGE}");
        return 2;
    };
    let feed = match std::fs::read_to_string(&jsonl) {
        Ok(feed) => feed,
        Err(err) => {
            eprintln!("cn-benchcmp: cannot read {}: {err}", jsonl.display());
            return 2;
        }
    };
    let mut baseline = Baseline::new_stamped(&name, &dir);
    if let Err(err) = baseline.ingest_jsonl(&workspace, &feed) {
        eprintln!("cn-benchcmp: {}: {err}", jsonl.display());
        return 2;
    }
    if baseline.benchmarks.is_empty() {
        eprintln!(
            "cn-benchcmp: {} holds no benchmark records (did the bench run with CN_BENCH_JSONL set?)",
            jsonl.display()
        );
        return 2;
    }
    let path = dir.join(Baseline::file_name(&name));
    if let Err(err) = baseline.save(&path) {
        eprintln!("cn-benchcmp: {err}");
        return 2;
    }
    println!(
        "saved baseline `{}` ({} benchmarks, git {}) to {}",
        baseline.name,
        baseline.benchmarks.len(),
        baseline.git_rev,
        path.display()
    );
    0
}

fn cmd_compare(args: &[String]) -> u8 {
    let mut positional: Vec<String> = Vec::new();
    let mut dir = default_dir();
    let mut config = CompareConfig::default();
    let mut json_output = false;
    let mut i = 0;
    while i < args.len() {
        let result = match args[i].as_str() {
            "--dir" => flag_value(args, &mut i, "--dir").map(|v| dir = PathBuf::from(v)),
            "--threshold" => flag_value(args, &mut i, "--threshold").and_then(|v| {
                v.parse::<f64>()
                    .map(|t| config.threshold = t)
                    .map_err(|_| format!("--threshold expects a number, got `{v}`"))
            }),
            "--min-effect" => flag_value(args, &mut i, "--min-effect").and_then(|v| {
                v.parse::<f64>()
                    .map(|e| config.min_effect = e)
                    .map_err(|_| format!("--min-effect expects a number, got `{v}`"))
            }),
            "--format" => flag_value(args, &mut i, "--format").and_then(|v| match v.as_str() {
                "human" => {
                    json_output = false;
                    Ok(())
                }
                "json" => {
                    json_output = true;
                    Ok(())
                }
                other => Err(format!("--format expects `human` or `json`, got `{other}`")),
            }),
            other if other.starts_with('-') => Err(format!("unknown argument `{other}`")),
            other => {
                positional.push(other.to_string());
                i += 1;
                Ok(())
            }
        };
        if let Err(msg) = result {
            eprintln!("cn-benchcmp: {msg}\n\n{USAGE}");
            return 2;
        }
    }
    let [baseline_arg, candidate_arg] = positional.as_slice() else {
        eprintln!("cn-benchcmp: compare needs exactly two baselines\n\n{USAGE}");
        return 2;
    };
    let mut loaded = Vec::new();
    for arg in [baseline_arg, candidate_arg] {
        let path = resolve(arg, &dir);
        match Baseline::load(&path) {
            Ok(b) => loaded.push(b),
            Err(err) => {
                eprintln!("cn-benchcmp: {err}");
                return 2;
            }
        }
    }
    let candidate = loaded.pop().expect("two baselines loaded");
    let baseline = loaded.pop().expect("two baselines loaded");
    let report = compare(&baseline, &candidate, &config);
    if json_output {
        println!("{}", report.to_json().render_pretty());
    } else {
        print!("{}", report.render_human());
    }
    if report.has_regressions() {
        1
    } else {
        0
    }
}

fn cmd_list(args: &[String]) -> u8 {
    let mut dir = default_dir();
    let mut i = 0;
    while i < args.len() {
        let result = match args[i].as_str() {
            "--dir" => flag_value(args, &mut i, "--dir").map(|v| dir = PathBuf::from(v)),
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(msg) = result {
            eprintln!("cn-benchcmp: {msg}\n\n{USAGE}");
            return 2;
        }
    }
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(err) => {
            eprintln!("cn-benchcmp: cannot read {}: {err}", dir.display());
            return 2;
        }
    };
    let mut names: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    names.sort();
    if names.is_empty() {
        println!("no BENCH_*.json baselines in {}", dir.display());
        return 0;
    }
    for path in names {
        match Baseline::load(&path) {
            Ok(b) => println!(
                "{:<24} {:>3} benchmarks  git {:<10} host {} ({} cpus)",
                b.name,
                b.benchmarks.len(),
                b.git_rev,
                b.host.hostname,
                b.host.cpus
            ),
            Err(err) => println!(
                "{:<24} UNREADABLE: {err}",
                path.file_name().unwrap_or_default().to_string_lossy()
            ),
        }
    }
    0
}
