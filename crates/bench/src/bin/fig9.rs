//! Regenerates **paper Fig. 9**: after Lipschitz-constant regularization
//! (no compensation), variations of σ = 0.5 are injected from weight layer
//! `i` to the last layer; accuracy vs the starting layer `i` shows that
//! late-layer variations are suppressed while early layers stay sensitive
//! — motivating compensation of the early layers only.
//!
//! ```bash
//! cargo run -p cn-bench --release --bin fig9
//! ```

use cn_bench::{cached_candidates, lipschitz_base, Pair, Scale};
use correctnet::report::{pct, render_table};

fn main() {
    let scale = Scale::from_env();
    let sigma = 0.5;
    println!("== Fig. 9: Lipschitz regularization vs suffix variations (σ = {sigma}) ==");
    println!("scale: {scale:?}\n");

    for pair in [Pair::Vgg16Cifar100, Pair::Vgg16Cifar10, Pair::LeNet5Cifar10] {
        let (model, data) = lipschitz_base(pair, scale, sigma);
        let report = cached_candidates(pair, scale, sigma, &model, &data);

        let mut rows = Vec::new();
        for p in &report.sweep {
            rows.push(vec![
                p.start.to_string(),
                pct(p.mean),
                format!("{:.1}", 100.0 * p.std),
                if p.mean >= 0.95 * report.clean_accuracy {
                    "ok".to_string()
                } else {
                    "below 95%".to_string()
                },
            ]);
        }
        println!(
            "--- {} (clean {}) ---",
            pair.name(),
            pct(report.clean_accuracy)
        );
        println!(
            "{}",
            render_table(&["start layer", "accuracy", "std", "vs 95% bar"], &rows)
        );
        println!(
            "candidates for compensation: first {} weight layers\n",
            report.candidate_count
        );
    }
    println!("Reproduction checks: (1) accuracy rises as the starting layer moves");
    println!("back (late-layer variations are suppressed); (2) only a prefix of");
    println!("early layers falls below the 95% bar (paper: 6 of 15 for VGG16-C100).");
}
