//! Deprecated compatibility shim: forwards to the unified experiment
//! runner. Prefer `cargo run -p cn-bench --bin cn-experiments -- run fig9`
//! (honors `--scale`/`--out`; this shim reads `CN_SCALE` and writes
//! `results/`).

fn main() {
    cn_bench::runner::shim_main("fig9");
}
