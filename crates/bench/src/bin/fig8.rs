//! Regenerates **paper Fig. 8**: accuracy at σ = 0.5 versus weight
//! overhead — CorrectNet against weight-replication [8], random sparse
//! adaptation [9] (each with and without online retraining) and
//! statistical/noise-aware training [11], on the two panels the paper
//! shows (LeNet-CIFAR10 and VGG16-CIFAR10).
//!
//! ```bash
//! cargo run -p cn-bench --release --bin fig8
//! ```

use cn_analog::montecarlo::mc_accuracy;
use cn_baselines::protection::RetrainConfig;
use cn_baselines::statistical::{train_noise_aware, NoiseAwareConfig};
use cn_baselines::{magnitude_replication, random_sparse_adaptation};
use cn_bench::{lipschitz_base, pipeline_config, plain_base, Pair, Scale};
use correctnet::compensation::weight_overhead;
use correctnet::pipeline::CorrectNetStages;
use correctnet::report::{pct, render_table};

fn main() {
    let scale = Scale::from_env();
    let sigma = 0.5;
    let fractions = [0.02f32, 0.05, 0.15];
    let samples = scale.mc_samples().min(6);
    println!("== Fig. 8: accuracy@σ=0.5 vs overhead, CorrectNet vs state of the art ==");
    println!("scale: {scale:?}\n");

    for pair in [Pair::LeNet5Cifar10, Pair::Vgg16Cifar10] {
        eprintln!("[fig8] running {} …", pair.name());
        let (plain, data) = plain_base(pair, scale);
        let cfg = pipeline_config(scale, sigma, 0x0f08);
        let stages = CorrectNetStages::new(cfg);

        let mut rows: Vec<Vec<String>> = Vec::new();

        // CorrectNet point: Lipschitz base + compensation on candidates.
        let (base, _) = lipschitz_base(pair, scale, sigma);
        let report = cn_bench::cached_candidates(pair, scale, sigma, &base, &data);
        let candidates: Vec<usize> = if report.candidate_count == 0 {
            vec![0]
        } else {
            report.candidates().into_iter().take(6).collect()
        };
        // Budget-capped stand-in for the RL placement (6% like the search).
        let plan = correctnet::compensation::budgeted_uniform_plan(&base, &candidates, 0.5, 0.06);
        let corrected = stages.build_and_train(&base, &data.train, &plan);
        let cn = stages.evaluate(&corrected, &data.test);
        rows.push(vec![
            "CorrectNet".into(),
            pct(weight_overhead(&corrected)),
            pct(cn.mean),
        ]);

        // [11]-style statistical training: zero overhead.
        let mut aware = plain.clone();
        train_noise_aware(
            &mut aware,
            &data.train,
            &NoiseAwareConfig {
                lr: 1e-3,
                ..NoiseAwareConfig::new(sigma, stages.config.comp_epochs, 0x11)
            },
        );
        let stat = mc_accuracy(&aware, &data.test, &stages.config.mc());
        rows.push(vec![
            "[11] statistical training".into(),
            pct(0.0),
            pct(stat.mean),
        ]);

        // [8]-style magnitude replication, without and with retraining.
        for (label, retrain) in [
            ("[8] replication (no retrain)", None),
            (
                "[8] replication (online retrain)",
                Some(RetrainConfig::quick()),
            ),
        ] {
            let points = magnitude_replication(
                &plain,
                &data.test,
                &data.train,
                &fractions,
                sigma,
                samples,
                0x88,
                retrain,
            );
            for p in points {
                rows.push(vec![label.to_string(), pct(p.fraction), pct(p.result.mean)]);
            }
        }

        // [9]-style random sparse adaptation (defined by online retraining).
        let points = random_sparse_adaptation(
            &plain,
            &data.test,
            &data.train,
            &fractions,
            sigma,
            samples,
            0x99,
            Some(RetrainConfig::quick()),
        );
        for p in points {
            rows.push(vec![
                "[9] random sparse adaptation".into(),
                pct(p.fraction),
                pct(p.result.mean),
            ]);
        }

        println!("--- {} ---", pair.name());
        println!(
            "{}",
            render_table(&["method", "overhead", "accuracy @ σ=0.5"], &rows)
        );
        println!();
    }
    println!("Reproduction checks: CorrectNet reaches higher accuracy than the");
    println!("non-retrained baselines at lower overhead, and is competitive with");
    println!("online-retrained baselines without needing per-chip retraining.");
}
