//! **Extension ablation** (not a paper figure): sensitivity of error
//! suppression to its two hyperparameters — the penalty strength β and
//! the spectral target λ (paper uses λ(k=1, σ) from eq. 10).
//!
//! ```bash
//! cargo run -p cn-bench --release --bin ablation_lipschitz
//! ```

use cn_analog::montecarlo::{mc_accuracy, McConfig};
use cn_bench::{pipeline_config, Pair, Scale};
use cn_nn::metrics::evaluate;
use cn_nn::optim::Adam;
use cn_nn::trainer::{TrainConfig, Trainer};
use correctnet::lipschitz::{lambda_for, spectral_norms, LipschitzRegularizer};
use correctnet::report::{pct, render_table};

fn main() {
    let scale = Scale::from_env();
    let sigma = 0.5;
    let pair = Pair::LeNet5Mnist;
    println!("== Ablation: Lipschitz regularization hyperparameters (σ = {sigma}) ==");
    println!(
        "pair: {}, scale {scale:?}; eq. 10 gives λ = {:.3}\n",
        pair.name(),
        lambda_for(1.0, sigma)
    );

    let data = pair.dataset(scale);
    let cfg = pipeline_config(scale, sigma, 0xab11);
    let mc = McConfig::new(scale.mc_samples(), sigma, 0xab12);

    let mut rows = Vec::new();
    for (label, beta, lambda) in [
        ("no regularization", 0.0f32, 1.0f32),
        ("β=1e-4, λ=λ(σ)", 1e-4, lambda_for(1.0, sigma)),
        ("β=1e-3, λ=λ(σ) (default)", 1e-3, lambda_for(1.0, sigma)),
        ("β=1e-2, λ=λ(σ)", 1e-2, lambda_for(1.0, sigma)),
        ("β=1e-3, λ=1 (Parseval)", 1e-3, 1.0),
    ] {
        // Two-phase protocol: plain pretraining, then regularized
        // fine-tuning (see pipeline docs).
        let mut model = pair.network(scale, 0xab13);
        Trainer::new(TrainConfig::new(cfg.base_epochs, 32, 1)).fit(
            &mut model,
            &data.train,
            &mut Adam::new(cfg.base_lr),
        );
        if beta > 0.0 {
            let reg = LipschitzRegularizer { beta, lambda };
            Trainer::new(TrainConfig::new(cfg.base_epochs / 2, 32, 2))
                .with_regularizer(move |m| reg.apply(m))
                .fit(&mut model, &data.train, &mut Adam::new(cfg.base_lr / 2.0));
        }
        let clean = evaluate(&mut model.clone(), &data.test, 64);
        let noisy = mc_accuracy(&model, &data.test, &mc);
        let max_norm = spectral_norms(&model)
            .iter()
            .map(|(_, s)| *s)
            .fold(0.0f32, f32::max);
        rows.push(vec![
            label.to_string(),
            pct(clean),
            pct(noisy.mean),
            format!("{max_norm:.2}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["configuration", "clean acc", "acc @ σ=0.5", "max σ(W)"],
            &rows
        )
    );
    println!("\nCheck: moderate β preserves clean accuracy while shrinking the");
    println!("spectral norms; overly aggressive β trades clean accuracy away.");
}
