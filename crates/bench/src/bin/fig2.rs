//! Regenerates **paper Fig. 2**: inference-accuracy degradation of the
//! *uncorrected* networks as weight variation σ grows from 0 to 0.5
//! (mean ± std over Monte-Carlo deployment samples, four network–dataset
//! pairs).
//!
//! ```bash
//! cargo run -p cn-bench --release --bin fig2
//! ```

use cn_analog::montecarlo::{mc_accuracy, McConfig};
use cn_bench::{plain_base, Pair, Scale};
use correctnet::report::{pct_pm, render_table};

fn main() {
    let scale = Scale::from_env();
    let sigmas = [0.0f32, 0.1, 0.2, 0.3, 0.4, 0.5];
    println!("== Fig. 2: accuracy degradation of uncorrected networks ==");
    println!(
        "scale: {scale:?} ({} MC samples per point)\n",
        scale.mc_samples()
    );

    for pair in Pair::ALL {
        let (model, data) = plain_base(pair, scale);
        let mut rows = Vec::new();
        for (i, &sigma) in sigmas.iter().enumerate() {
            let mc = McConfig {
                samples: if sigma == 0.0 { 1 } else { scale.mc_samples() },
                sigma,
                batch_size: 64,
                seed: 0xf162 + i as u64,
            };
            let r = mc_accuracy(&model, &data.test, &mc);
            rows.push(vec![format!("{sigma:.1}"), pct_pm(r.mean, r.std)]);
        }
        println!("--- {} ---", pair.name());
        println!(
            "{}",
            render_table(&["sigma", "accuracy (mean ± std)"], &rows)
        );
        let paper = pair.paper_row();
        println!(
            "paper shape: {} at σ=0 degrading to {} at σ=0.5; deeper nets degrade harder.\n",
            correctnet::report::pct(paper.clean),
            correctnet::report::pct(paper.noisy)
        );
    }
    println!("Reproduction checks: (1) monotone degradation with σ;");
    println!("(2) VGG16 (deeper) collapses harder than LeNet-5 at σ=0.5.");
}
