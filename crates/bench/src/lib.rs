//! # cn-bench
//!
//! Experiment regenerators for every table and figure of the paper's
//! evaluation (one binary each — see `DESIGN.md` §3 for the index) plus
//! Criterion micro-benchmarks of the substrate.
//!
//! ```bash
//! cargo run -p cn-bench --release --bin table1     # paper Table I
//! cargo run -p cn-bench --release --bin fig2       # paper Fig. 2
//! CN_SCALE=full cargo run -p cn-bench --release --bin fig7
//! cargo bench -p cn-bench                          # substrate benches
//! ```
//!
//! Every binary prints a paper-vs-measured table; absolute numbers differ
//! (synthetic datasets, width-scaled VGG16 — `DESIGN.md` §4), the *shape*
//! of each result is the reproduction target.

use cn_data::{synthetic_cifar10, synthetic_cifar100, synthetic_mnist, TrainTest};
use cn_nn::zoo::{lenet5, vgg16, LeNetConfig, VggConfig};
use cn_nn::Sequential;
use cn_tensor::io::{load_state_dict, save_state_dict};
use correctnet::pipeline::{CorrectNetConfig, CorrectNetStages};
use std::path::PathBuf;

/// Experiment scale, selected via the `CN_SCALE` environment variable
/// (`quick` default, `full` for the larger profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale: small datasets, 12 MC samples, width-1/8 VGG.
    Quick,
    /// Larger profile: more data, 60 MC samples, width-1/4 VGG.
    Full,
}

impl Scale {
    /// Reads `CN_SCALE` (default quick).
    pub fn from_env() -> Scale {
        match std::env::var("CN_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Monte-Carlo samples per evaluation (paper: 250).
    pub fn mc_samples(&self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 60,
        }
    }

    /// Train/test sizes for the MNIST-like task.
    pub fn mnist_sizes(&self) -> (usize, usize) {
        match self {
            Scale::Quick => (1200, 350),
            Scale::Full => (4000, 1000),
        }
    }

    /// Train/test sizes for the CIFAR-like tasks.
    pub fn cifar_sizes(&self) -> (usize, usize) {
        match self {
            Scale::Quick => (1200, 300),
            Scale::Full => (4000, 1000),
        }
    }

    /// VGG width multiplier.
    pub fn vgg_width(&self) -> f32 {
        match self {
            Scale::Quick => 0.125,
            Scale::Full => 0.25,
        }
    }

    /// Base-training epochs.
    pub fn epochs(&self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Full => 16,
        }
    }
}

/// The four network–dataset pairs of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pair {
    /// VGG16 on the CIFAR-100 stand-in.
    Vgg16Cifar100,
    /// VGG16 on the CIFAR-10 stand-in.
    Vgg16Cifar10,
    /// LeNet-5 on the CIFAR-10 stand-in.
    LeNet5Cifar10,
    /// LeNet-5 on the MNIST stand-in.
    LeNet5Mnist,
}

/// Paper Table I reference values for one pair.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// σ = 0 accuracy.
    pub clean: f32,
    /// σ = 0.5 uncorrected accuracy.
    pub noisy: f32,
    /// σ = 0.5 CorrectNet accuracy.
    pub corrected: f32,
    /// Weight overhead.
    pub overhead: f32,
    /// Compensated layers.
    pub layers: usize,
}

impl Pair {
    /// All four pairs in the paper's Table I order.
    pub const ALL: [Pair; 4] = [
        Pair::Vgg16Cifar100,
        Pair::Vgg16Cifar10,
        Pair::LeNet5Cifar10,
        Pair::LeNet5Mnist,
    ];

    /// Human-readable name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Pair::Vgg16Cifar100 => "VGG16-Cifar100",
            Pair::Vgg16Cifar10 => "VGG16-Cifar10",
            Pair::LeNet5Cifar10 => "LeNet-5-Cifar10",
            Pair::LeNet5Mnist => "LeNet-5-MNIST",
        }
    }

    /// The paper's Table I row.
    pub fn paper_row(&self) -> PaperRow {
        match self {
            Pair::Vgg16Cifar100 => PaperRow {
                clean: 0.7052,
                noisy: 0.0169,
                corrected: 0.6701,
                overhead: 0.0103,
                layers: 4,
            },
            Pair::Vgg16Cifar10 => PaperRow {
                clean: 0.932,
                noisy: 0.1601,
                corrected: 0.9129,
                overhead: 0.0058,
                layers: 3,
            },
            Pair::LeNet5Cifar10 => PaperRow {
                clean: 0.8089,
                noisy: 0.2529,
                corrected: 0.749,
                overhead: 0.0347,
                layers: 1,
            },
            Pair::LeNet5Mnist => PaperRow {
                clean: 0.9879,
                noisy: 0.8458,
                corrected: 0.9747,
                overhead: 0.05,
                layers: 2,
            },
        }
    }

    /// Generates the (seeded) dataset stand-in at the given scale.
    pub fn dataset(&self, scale: Scale) -> TrainTest {
        match self {
            Pair::Vgg16Cifar100 => {
                // 100 classes need more samples per class than the 10-way
                // tasks to reach a meaningful clean accuracy.
                let (tr, te) = match scale {
                    Scale::Quick => (2400, 500),
                    Scale::Full => (6000, 1200),
                };
                synthetic_cifar100(tr, te, 0xc1f0)
            }
            Pair::Vgg16Cifar10 | Pair::LeNet5Cifar10 => {
                let (tr, te) = scale.cifar_sizes();
                synthetic_cifar10(tr, te, 0xc1f1)
            }
            Pair::LeNet5Mnist => {
                let (tr, te) = scale.mnist_sizes();
                synthetic_mnist(tr, te, 0x3a57)
            }
        }
    }

    /// Builds the untrained network.
    pub fn network(&self, scale: Scale, seed: u64) -> Sequential {
        match self {
            Pair::Vgg16Cifar100 => vgg16(&VggConfig {
                width_mult: scale.vgg_width(),
                batch_norm: false,
                dropout: 0.0,
                ..VggConfig::full(100, seed)
            }),
            Pair::Vgg16Cifar10 => vgg16(&VggConfig {
                width_mult: scale.vgg_width(),
                batch_norm: false,
                dropout: 0.0,
                ..VggConfig::full(10, seed)
            }),
            Pair::LeNet5Cifar10 => lenet5(&LeNetConfig::cifar10(seed)),
            Pair::LeNet5Mnist => lenet5(&LeNetConfig::mnist(seed)),
        }
    }

    /// Short file-system tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Pair::Vgg16Cifar100 => "vgg16_c100",
            Pair::Vgg16Cifar10 => "vgg16_c10",
            Pair::LeNet5Cifar10 => "lenet_c10",
            Pair::LeNet5Mnist => "lenet_mnist",
        }
    }
}

/// The shared pipeline configuration used by the experiment binaries.
pub fn pipeline_config(scale: Scale, sigma: f32, seed: u64) -> CorrectNetConfig {
    CorrectNetConfig {
        sigma,
        beta: 1e-3,
        base_epochs: scale.epochs(),
        reg_epochs: scale.epochs() / 2,
        base_lr: 2e-3,
        comp_epochs: match scale {
            Scale::Quick => 3,
            Scale::Full => 8,
        },
        comp_lr: 1e-3,
        batch_size: 32,
        mc_samples: scale.mc_samples(),
        threshold: 0.95,
        seed,
    }
}

/// Directory where trained base models are cached between experiment
/// binaries (`target/cn_models/`).
pub fn cache_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/cn_models");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Loads a cached trained model or trains and caches it.
///
/// `tag` identifies the artifact; `build` constructs the untrained
/// network; `train` trains it in place. Delete `target/cn_models` to force
/// retraining.
pub fn cached_model(
    tag: &str,
    build: impl FnOnce() -> Sequential,
    train: impl FnOnce(&mut Sequential),
) -> Sequential {
    let path = cache_dir().join(format!("{tag}.cnsd"));
    let mut model = build();
    if path.exists() {
        if let Ok(dict) = load_state_dict(&path) {
            if model.load_state_dict(&dict).is_ok() {
                eprintln!("[cache] loaded {tag}");
                return model;
            }
        }
        eprintln!("[cache] stale entry for {tag}; retraining");
    }
    train(&mut model);
    save_state_dict(&path, &model.state_dict()).ok();
    eprintln!("[cache] trained and saved {tag}");
    model
}

/// Trains (or loads) the Lipschitz-regularized base model for a pair.
pub fn lipschitz_base(pair: Pair, scale: Scale, sigma: f32) -> (Sequential, TrainTest) {
    let data = pair.dataset(scale);
    let cfg = pipeline_config(scale, sigma, 0x5eed);
    let stages = CorrectNetStages::new(cfg);
    let tag = format!("{}_lips_s{:02}", pair.tag(), (sigma * 10.0) as u32);
    let model = cached_model(
        &tag,
        || pair.network(scale, 0xba5e),
        |m| {
            stages.train_base(m, &data.train);
        },
    );
    (model, data)
}

/// Trains (or loads) the plainly trained model for a pair.
pub fn plain_base(pair: Pair, scale: Scale) -> (Sequential, TrainTest) {
    let data = pair.dataset(scale);
    let cfg = pipeline_config(scale, 0.5, 0x5eed);
    let stages = CorrectNetStages::new(cfg);
    let tag = format!("{}_plain", pair.tag());
    let model = cached_model(
        &tag,
        || pair.network(scale, 0xba5e),
        |m| {
            stages.train_plain(m, &data.train);
        },
    );
    (model, data)
}

/// Loads or computes the candidate report for a pair's Lipschitz base.
///
/// The suffix-variation sweep is the single most expensive *shared* step
/// across the experiment binaries (table1/fig7/fig8/fig10 all need it for
/// the same base model), so it is cached as a small text file next to the
/// model cache. The canonical seed makes the sweep identical regardless
/// of which binary computes it first.
pub fn cached_candidates(
    pair: Pair,
    scale: Scale,
    sigma: f32,
    base: &Sequential,
    data: &TrainTest,
) -> correctnet::candidates::CandidateReport {
    use correctnet::candidates::{CandidateReport, SuffixPoint};
    let path = cache_dir().join(format!(
        "{}_cands_s{:02}.txt",
        pair.tag(),
        (sigma * 10.0) as u32
    ));
    if let Ok(text) = std::fs::read_to_string(&path) {
        let mut lines = text.lines();
        if let Some(header) = lines.next() {
            let head: Vec<f32> = header
                .split_whitespace()
                .filter_map(|s| s.parse().ok())
                .collect();
            if head.len() == 3 {
                let sweep: Vec<SuffixPoint> = lines
                    .filter_map(|l| {
                        let v: Vec<f32> = l
                            .split_whitespace()
                            .filter_map(|s| s.parse().ok())
                            .collect();
                        (v.len() == 3).then(|| SuffixPoint {
                            start: v[0] as usize,
                            mean: v[1],
                            std: v[2],
                        })
                    })
                    .collect();
                if !sweep.is_empty() {
                    eprintln!("[cache] loaded candidate sweep for {}", pair.tag());
                    return CandidateReport {
                        clean_accuracy: head[0],
                        threshold: head[1],
                        candidate_count: head[2] as usize,
                        sweep,
                    };
                }
            }
        }
        eprintln!(
            "[cache] stale candidate sweep for {}; recomputing",
            pair.tag()
        );
    }
    // The sweep is a *selection* heuristic: a 160-image evaluation subset
    // and 8 MC samples locate the 95% knee at a fraction of the cost of
    // full-test evaluation (headline numbers always use the full test set).
    let mut cfg = pipeline_config(scale, sigma, 0xca4d);
    cfg.mc_samples = 8;
    let stages = CorrectNetStages::new(cfg);
    let sweep_test = data.test.take(data.test.len().min(160));
    let report = stages.candidates(base, &sweep_test);
    let mut text = format!(
        "{} {} {}\n",
        report.clean_accuracy, report.threshold, report.candidate_count
    );
    for p in &report.sweep {
        text.push_str(&format!("{} {} {}\n", p.start, p.mean, p.std));
    }
    std::fs::write(&path, text).ok();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_profiles_are_ordered() {
        assert_eq!(Scale::Quick.mc_samples(), 12);
        assert!(Scale::Full.mc_samples() > Scale::Quick.mc_samples());
        assert!(Scale::Full.vgg_width() > Scale::Quick.vgg_width());
    }

    #[test]
    fn pairs_cover_paper_table() {
        assert_eq!(Pair::ALL.len(), 4);
        for pair in Pair::ALL {
            let row = pair.paper_row();
            assert!(row.clean > row.noisy, "{}", pair.name());
            assert!(row.corrected > row.noisy);
            assert!(row.corrected / row.clean > 0.9);
        }
    }

    #[test]
    fn networks_match_datasets() {
        for pair in Pair::ALL {
            let data = match pair {
                Pair::LeNet5Mnist => synthetic_mnist(4, 2, 1),
                Pair::Vgg16Cifar100 => synthetic_cifar100(4, 2, 1),
                _ => synthetic_cifar10(4, 2, 1),
            };
            let mut net = pair.network(Scale::Quick, 2);
            let (x, _) = data.train.gather(&[0, 1]);
            let y = net.forward(&x, false);
            assert_eq!(y.dims()[0], 2, "{}", pair.name());
            assert_eq!(y.dims()[1], data.train.num_classes, "{}", pair.name());
        }
    }
}
