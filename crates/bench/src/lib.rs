//! # cn-bench
//!
//! The experiment subsystem regenerating every table and figure of the
//! paper's evaluation, plus Criterion micro-benchmarks of the substrate.
//!
//! The subsystem is layered:
//!
//! - [`profile`] — scale profiles (`quick`/`default`/`full`) and the four
//!   network–dataset [`Pair`]s of the paper.
//! - [`cache`] — the trained-model cache keyed by (architecture, dataset
//!   seed, train config), so a sweep over many experiments trains each
//!   base model exactly once.
//! - [`experiments`] — the [`experiments::Experiment`] trait
//!   and registry, one module per paper artifact (`table1`, `fig2`,
//!   `fig7`, `fig8`, `fig9`, `fig10`, `ablation_device`,
//!   `ablation_lipschitz`).
//! - [`report`] — the structured [`ExperimentReport`] with its stable
//!   JSON schema (version 1).
//! - [`runner`] — resolves names, stamps wall clocks, prints tables and
//!   writes `results/<name>_<scale>.json`.
//! - [`baseline`] — named bench baselines (`BENCH_<name>.json` at the
//!   repo root: `workspace/bench/group/id` taxonomy, per-sample vectors,
//!   host fingerprint, git rev) and the statistical regression gate
//!   behind the `cn-benchcmp` binary and `scripts/bench`.
//!
//! ```bash
//! cargo run -p cn-bench --release --bin cn-experiments -- list
//! cargo run -p cn-bench --release --bin cn-experiments -- run fig2 --scale quick --out results/
//! cargo run -p cn-bench --release --bin cn-experiments -- run all
//! cargo run -p cn-bench --release --bin cn-experiments -- validate results/fig2_quick.json
//! cargo bench -p cn-bench                          # substrate benches
//! ```
//!
//! The legacy one-binary-per-figure entry points (`table1`, `fig2`, …)
//! still exist as deprecated shims over the registry.
//!
//! Every experiment prints a paper-vs-measured table; absolute numbers
//! differ (synthetic datasets, width-scaled VGG16 — see the fidelity
//! deviations in `docs/ARCHITECTURE.md`), the *shape* of each result is
//! the reproduction target.

#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod experiments;
pub mod profile;
pub mod report;
pub mod runner;

pub use baseline::compare::{compare, BenchComparison, CompareConfig, CompareReport, Verdict};
pub use baseline::{Baseline, BaselineError, BenchRecord, HostFingerprint};
pub use cache::{cache_dir, CacheStats, ModelCache, ModelKey};
pub use experiments::{Ctx, Experiment};
pub use profile::{pipeline_config, Pair, PaperRow, Scale};
pub use report::{ExperimentReport, Series, SeriesPoint, TableBlock};
pub use runner::{run_many, run_one, RunOptions, RunSummary};
