//! Scale profiles and the paper's network–dataset pairs.
//!
//! Every experiment resolves a [`Scale`] (CLI `--scale` flag, else the
//! `CN_SCALE` environment variable, else [`Scale::Quick`]) and iterates
//! over [`Pair`]s, so profile knobs live in one place instead of being
//! scattered across the eight regenerators.

use cn_data::{synthetic_cifar10, synthetic_cifar100, synthetic_mnist, TrainTest};
use cn_nn::zoo::{lenet5, vgg16, LeNetConfig, VggConfig};
use cn_nn::Sequential;
use correctnet::pipeline::CorrectNetConfig;

/// Experiment scale profile.
///
/// Selected via `--scale quick|default|full` on the `cn-experiments` CLI
/// or the `CN_SCALE` environment variable (CLI wins, `quick` when unset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale: small datasets, 12 MC samples, width-1/8 VGG.
    Quick,
    /// Intermediate profile: more data, 24 MC samples, width-3/16 VGG.
    Default,
    /// Larger profile: most data, 60 MC samples, width-1/4 VGG.
    Full,
}

impl Scale {
    /// All profiles, smallest first.
    pub const ALL: [Scale; 3] = [Scale::Quick, Scale::Default, Scale::Full];

    /// Reads `CN_SCALE` (default quick).
    pub fn from_env() -> Scale {
        std::env::var("CN_SCALE")
            .ok()
            .and_then(|v| Scale::parse(&v))
            .unwrap_or(Scale::Quick)
    }

    /// Parses a profile name (case-insensitive).
    pub fn parse(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Canonical lowercase profile name.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }

    /// Monte-Carlo samples per evaluation (paper: 250).
    pub fn mc_samples(&self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Default => 24,
            Scale::Full => 60,
        }
    }

    /// Train/test sizes for the MNIST-like task.
    pub fn mnist_sizes(&self) -> (usize, usize) {
        match self {
            Scale::Quick => (1200, 350),
            Scale::Default => (2000, 600),
            Scale::Full => (4000, 1000),
        }
    }

    /// Train/test sizes for the CIFAR-like tasks.
    pub fn cifar_sizes(&self) -> (usize, usize) {
        match self {
            Scale::Quick => (1200, 300),
            Scale::Default => (2000, 500),
            Scale::Full => (4000, 1000),
        }
    }

    /// Train/test sizes for the 100-class CIFAR stand-in (100 classes need
    /// more samples per class to reach a meaningful clean accuracy).
    pub fn cifar100_sizes(&self) -> (usize, usize) {
        match self {
            Scale::Quick => (2400, 500),
            Scale::Default => (3600, 800),
            Scale::Full => (6000, 1200),
        }
    }

    /// VGG width multiplier.
    pub fn vgg_width(&self) -> f32 {
        match self {
            Scale::Quick => 0.125,
            Scale::Default => 0.1875,
            Scale::Full => 0.25,
        }
    }

    /// Base-training epochs.
    pub fn epochs(&self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Default => 12,
            Scale::Full => 16,
        }
    }

    /// Compensator-training epochs.
    pub fn comp_epochs(&self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Default => 5,
            Scale::Full => 8,
        }
    }

    /// REINFORCE episodes for placement-search experiments; `base` is the
    /// quick-profile episode count.
    pub fn search_episodes(&self, base: usize) -> usize {
        match self {
            Scale::Quick => base,
            Scale::Default => base * 2,
            Scale::Full => base * 4,
        }
    }
}

/// The four network–dataset pairs of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pair {
    /// VGG16 on the CIFAR-100 stand-in.
    Vgg16Cifar100,
    /// VGG16 on the CIFAR-10 stand-in.
    Vgg16Cifar10,
    /// LeNet-5 on the CIFAR-10 stand-in.
    LeNet5Cifar10,
    /// LeNet-5 on the MNIST stand-in.
    LeNet5Mnist,
}

/// Paper Table I reference values for one pair.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// σ = 0 accuracy.
    pub clean: f32,
    /// σ = 0.5 uncorrected accuracy.
    pub noisy: f32,
    /// σ = 0.5 CorrectNet accuracy.
    pub corrected: f32,
    /// Weight overhead.
    pub overhead: f32,
    /// Compensated layers.
    pub layers: usize,
}

impl Pair {
    /// All four pairs in the paper's Table I order.
    pub const ALL: [Pair; 4] = [
        Pair::Vgg16Cifar100,
        Pair::Vgg16Cifar10,
        Pair::LeNet5Cifar10,
        Pair::LeNet5Mnist,
    ];

    /// Human-readable name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Pair::Vgg16Cifar100 => "VGG16-Cifar100",
            Pair::Vgg16Cifar10 => "VGG16-Cifar10",
            Pair::LeNet5Cifar10 => "LeNet-5-Cifar10",
            Pair::LeNet5Mnist => "LeNet-5-MNIST",
        }
    }

    /// The paper's Table I row.
    pub fn paper_row(&self) -> PaperRow {
        match self {
            Pair::Vgg16Cifar100 => PaperRow {
                clean: 0.7052,
                noisy: 0.0169,
                corrected: 0.6701,
                overhead: 0.0103,
                layers: 4,
            },
            Pair::Vgg16Cifar10 => PaperRow {
                clean: 0.932,
                noisy: 0.1601,
                corrected: 0.9129,
                overhead: 0.0058,
                layers: 3,
            },
            Pair::LeNet5Cifar10 => PaperRow {
                clean: 0.8089,
                noisy: 0.2529,
                corrected: 0.749,
                overhead: 0.0347,
                layers: 1,
            },
            Pair::LeNet5Mnist => PaperRow {
                clean: 0.9879,
                noisy: 0.8458,
                corrected: 0.9747,
                overhead: 0.05,
                layers: 2,
            },
        }
    }

    /// Dataset generation parameters at a scale: train size, test size and
    /// generation seed. Exposed so the trained-model cache can key on the
    /// exact dataset a model was fitted to.
    pub fn dataset_spec(&self, scale: Scale) -> (usize, usize, u64) {
        match self {
            Pair::Vgg16Cifar100 => {
                let (tr, te) = scale.cifar100_sizes();
                (tr, te, 0xc1f0)
            }
            Pair::Vgg16Cifar10 | Pair::LeNet5Cifar10 => {
                let (tr, te) = scale.cifar_sizes();
                (tr, te, 0xc1f1)
            }
            Pair::LeNet5Mnist => {
                let (tr, te) = scale.mnist_sizes();
                (tr, te, 0x3a57)
            }
        }
    }

    /// Generates the (seeded) dataset stand-in at the given scale.
    pub fn dataset(&self, scale: Scale) -> TrainTest {
        let (tr, te, seed) = self.dataset_spec(scale);
        match self {
            Pair::Vgg16Cifar100 => synthetic_cifar100(tr, te, seed),
            Pair::Vgg16Cifar10 | Pair::LeNet5Cifar10 => synthetic_cifar10(tr, te, seed),
            Pair::LeNet5Mnist => synthetic_mnist(tr, te, seed),
        }
    }

    /// Builds the untrained network.
    pub fn network(&self, scale: Scale, seed: u64) -> Sequential {
        match self {
            Pair::Vgg16Cifar100 => vgg16(&VggConfig {
                width_mult: scale.vgg_width(),
                batch_norm: false,
                dropout: 0.0,
                ..VggConfig::full(100, seed)
            }),
            Pair::Vgg16Cifar10 => vgg16(&VggConfig {
                width_mult: scale.vgg_width(),
                batch_norm: false,
                dropout: 0.0,
                ..VggConfig::full(10, seed)
            }),
            Pair::LeNet5Cifar10 => lenet5(&LeNetConfig::cifar10(seed)),
            Pair::LeNet5Mnist => lenet5(&LeNetConfig::mnist(seed)),
        }
    }

    /// Short file-system tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Pair::Vgg16Cifar100 => "vgg16_c100",
            Pair::Vgg16Cifar10 => "vgg16_c10",
            Pair::LeNet5Cifar10 => "lenet_c10",
            Pair::LeNet5Mnist => "lenet_mnist",
        }
    }
}

/// The shared pipeline configuration used by the experiments.
pub fn pipeline_config(scale: Scale, sigma: f32, seed: u64) -> CorrectNetConfig {
    CorrectNetConfig {
        sigma,
        beta: 1e-3,
        base_epochs: scale.epochs(),
        reg_epochs: scale.epochs() / 2,
        base_lr: 2e-3,
        comp_epochs: scale.comp_epochs(),
        comp_lr: 1e-3,
        batch_size: 32,
        mc_samples: scale.mc_samples(),
        threshold: 0.95,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_data::{synthetic_cifar10, synthetic_cifar100, synthetic_mnist};

    #[test]
    fn scale_profiles_are_ordered() {
        assert_eq!(Scale::Quick.mc_samples(), 12);
        for pair in Scale::ALL.windows(2) {
            assert!(pair[1].mc_samples() > pair[0].mc_samples());
            assert!(pair[1].vgg_width() > pair[0].vgg_width());
            assert!(pair[1].epochs() > pair[0].epochs());
            assert!(pair[1].cifar_sizes().0 > pair[0].cifar_sizes().0);
        }
    }

    #[test]
    fn scale_names_roundtrip() {
        for scale in Scale::ALL {
            assert_eq!(Scale::parse(scale.name()), Some(scale));
        }
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn pairs_cover_paper_table() {
        assert_eq!(Pair::ALL.len(), 4);
        for pair in Pair::ALL {
            let row = pair.paper_row();
            assert!(row.clean > row.noisy, "{}", pair.name());
            assert!(row.corrected > row.noisy);
            assert!(row.corrected / row.clean > 0.9);
        }
    }

    #[test]
    fn networks_match_datasets() {
        for pair in Pair::ALL {
            let data = match pair {
                Pair::LeNet5Mnist => synthetic_mnist(4, 2, 1),
                Pair::Vgg16Cifar100 => synthetic_cifar100(4, 2, 1),
                _ => synthetic_cifar10(4, 2, 1),
            };
            let mut net = pair.network(Scale::Quick, 2);
            let (x, _) = data.train.gather(&[0, 1]);
            let y = net.forward(&x, false);
            assert_eq!(y.dims()[0], 2, "{}", pair.name());
            assert_eq!(y.dims()[1], data.train.num_classes, "{}", pair.name());
        }
    }
}
