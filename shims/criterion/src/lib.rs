//! Offline mini-`criterion`.
//!
//! Provides the builder/group/bencher surface the workspace's benches
//! use, with a simple wall-clock measurement loop: warm up for
//! `warm_up_time`, then run batches until `measurement_time` elapses or
//! `sample_size` samples are collected, and report mean / min / max
//! nanoseconds per iteration on stdout. No statistics, plots or
//! comparisons — the point is cheap, reproducible timing in an offline
//! environment.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name with an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(self, &id.into().label, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(self.criterion, &label, &mut f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Drives the measured closure inside a benchmark body.
pub struct Bencher {
    mode: BencherMode,
    iters_done: u64,
    elapsed: Duration,
}

enum BencherMode {
    WarmUp { deadline: Instant },
    Measure { iters: u64 },
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        match self.mode {
            BencherMode::WarmUp { deadline } => {
                while Instant::now() < deadline {
                    std::hint::black_box(f());
                    self.iters_done += 1;
                }
            }
            BencherMode::Measure { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                self.elapsed = start.elapsed();
                self.iters_done = iters;
            }
        }
    }
}

fn run_one(config: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up doubles as calibration: how many iterations fit the window?
    let mut warm = Bencher {
        mode: BencherMode::WarmUp {
            deadline: Instant::now() + config.warm_up_time,
        },
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    if warm.iters_done == 0 {
        // The closure never called iter(); nothing to measure.
        println!("bench {label:<48} (no measurement)");
        return;
    }
    let per_sample = (warm.iters_done * config.measurement_time.as_nanos().max(1) as u64
        / config.warm_up_time.as_nanos().max(1) as u64)
        .div_ceil(config.sample_size as u64)
        .max(1);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    let deadline = Instant::now() + config.measurement_time.mul_f64(1.5);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            mode: BencherMode::Measure { iters: per_sample },
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / per_sample as f64);
        if Instant::now() > deadline {
            break;
        }
    }
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples_ns.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "bench {label:<48} mean {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        samples_ns.len(),
        per_sample
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Mirrors criterion's `black_box` re-export.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_inputs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(4));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(32), &32usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}
