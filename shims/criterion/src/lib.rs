//! Offline mini-`criterion`.
//!
//! Provides the builder/group/bencher surface the workspace's benches
//! use, with a simple wall-clock measurement loop: warm up for
//! `warm_up_time`, then run batches until `measurement_time` elapses or
//! `sample_size` samples are collected, and report mean / min / max
//! nanoseconds per iteration on stdout. No plots — the point is cheap,
//! reproducible timing in an offline environment.
//!
//! Beyond stdout, every completed benchmark hands its full per-sample
//! vector to the reporting layer as a [`SampleRecord`]:
//!
//! - an in-process hook registered with [`Criterion::reporter`]
//!   (used by the harness self-tests and ad-hoc tooling), and
//! - a machine-readable JSONL sink: when `CN_BENCH_JSONL=<path>` is set,
//!   one JSON object per benchmark is appended to `<path>`. This is the
//!   feed `cn-benchcmp save` turns into `BENCH_<name>.json` baselines.
//!
//! Measurement is driven through an internal clock abstraction so the
//! sampling policy itself is testable: [`Criterion::with_fake_clock`]
//! substitutes a deterministic virtual timeline where every benched
//! iteration costs a fixed number of nanoseconds.
//!
//! Like real criterion, positional command-line arguments act as
//! substring filters on benchmark labels (`cargo bench -p cn-bench
//! --bench gemm -- square256`); flag-like arguments (anything starting
//! with `-`, e.g. the `--bench` cargo appends) are ignored.

use std::cell::{Cell, RefCell};
use std::fmt::{self, Display};
use std::io::Write as _;
use std::rc::Rc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name with an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// The measurement outcome of one benchmark: the full sample vector and
/// the loop parameters that produced it. Handed to reporter hooks and
/// rendered into the `CN_BENCH_JSONL` sink.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    /// Full label (`group/id` for grouped benchmarks).
    pub label: String,
    /// Iterations executed during calibration warm-up.
    pub warm_up_iters: u64,
    /// Iterations batched into each timed sample.
    pub iters_per_sample: u64,
    /// Per-iteration nanoseconds, one entry per collected sample.
    pub samples_ns: Vec<f64>,
}

impl SampleRecord {
    /// Mean per-iteration nanoseconds over the samples.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    /// One JSONL line for the `CN_BENCH_JSONL` sink. `bin` names the
    /// bench binary the record came from (the taxonomy's second level).
    pub fn to_json_line(&self, bin: &str) -> String {
        let samples: Vec<String> = self.samples_ns.iter().map(|s| format!("{s}")).collect();
        format!(
            "{{\"bin\":\"{}\",\"label\":\"{}\",\"warm_up_iters\":{},\"iters_per_sample\":{},\"samples_ns\":[{}]}}",
            json_escape(bin),
            json_escape(&self.label),
            self.warm_up_iters,
            self.iters_per_sample,
            samples.join(",")
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The measurement timeline: wall clock in production, a deterministic
/// virtual clock in harness self-tests. The fake clock advances by a
/// fixed `step_ns` per benched iteration, so warm-up calibration, sample
/// batching and deadline truncation are all exactly reproducible.
#[derive(Clone)]
enum Clock {
    Wall,
    Fake { now_ns: Rc<Cell<u64>>, step_ns: u64 },
}

impl Clock {
    fn now_ns(&self) -> u64 {
        match self {
            Clock::Wall => wall_epoch().elapsed().as_nanos() as u64,
            Clock::Fake { now_ns, .. } => now_ns.get(),
        }
    }

    /// One benched iteration completed: advance the virtual timeline
    /// (no-op on the wall clock — real time advanced on its own).
    fn advance_iter(&self) {
        if let Clock::Fake { now_ns, step_ns } = self {
            now_ns.set(now_ns.get() + step_ns);
        }
    }
}

fn wall_epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

type ReporterHook = Rc<RefCell<dyn FnMut(&SampleRecord)>>;

/// Top-level harness configuration and entry point.
#[derive(Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    clock: Clock,
    reporter: Option<ReporterHook>,
    /// Explicit label filters; `None` falls back to the CLI filters
    /// captured by [`init_cli_filters`].
    filters: Option<Vec<String>>,
}

impl fmt::Debug for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Criterion")
            .field("sample_size", &self.sample_size)
            .field("warm_up_time", &self.warm_up_time)
            .field("measurement_time", &self.measurement_time)
            .field("fake_clock", &matches!(self.clock, Clock::Fake { .. }))
            .field("reporter", &self.reporter.is_some())
            .field("filters", &self.filters)
            .finish()
    }
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
            clock: Clock::Wall,
            reporter: None,
            filters: None,
        }
    }
}

impl Criterion {
    /// A harness on a deterministic virtual clock where every benched
    /// iteration costs exactly `step` of simulated time. Used by the
    /// self-tests that pin warm-up/sample-count semantics.
    pub fn with_fake_clock(step: Duration) -> Criterion {
        Criterion {
            clock: Clock::Fake {
                now_ns: Rc::new(Cell::new(0)),
                step_ns: step.as_nanos().max(1) as u64,
            },
            ..Criterion::default()
        }
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Registers an in-process hook receiving each completed benchmark's
    /// [`SampleRecord`] (after the stdout line is printed).
    pub fn reporter(mut self, hook: impl FnMut(&SampleRecord) + 'static) -> Criterion {
        self.reporter = Some(Rc::new(RefCell::new(hook)));
        self
    }

    /// Adds an explicit substring filter on benchmark labels, overriding
    /// the CLI filters. A benchmark runs when any filter matches.
    pub fn filter(mut self, substring: impl Into<String>) -> Criterion {
        self.filters
            .get_or_insert_with(Vec::new)
            .push(substring.into());
        self
    }

    fn label_selected(&self, label: &str) -> bool {
        let cli = CLI_FILTERS.get();
        let filters = match (&self.filters, cli) {
            (Some(own), _) => own.as_slice(),
            (None, Some(cli)) => cli.as_slice(),
            (None, None) => &[],
        };
        filters.is_empty() || filters.iter().any(|f| label.contains(f.as_str()))
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(self, &id.into().label, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Positional (non-flag) command-line arguments, as label filters.
/// Called once by the `criterion_main!`-generated `main`; unit tests
/// never call it, so programmatic [`Criterion`] values are unaffected.
pub fn init_cli_filters() {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let _ = CLI_FILTERS.set(filters);
}

static CLI_FILTERS: OnceLock<Vec<String>> = OnceLock::new();

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(self.criterion, &label, &mut f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Drives the measured closure inside a benchmark body.
pub struct Bencher {
    mode: BencherMode,
    clock: Clock,
    iters_done: u64,
    elapsed_ns: u64,
}

enum BencherMode {
    WarmUp { deadline_ns: u64 },
    Measure { iters: u64 },
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        match self.mode {
            BencherMode::WarmUp { deadline_ns } => {
                while self.clock.now_ns() < deadline_ns {
                    std::hint::black_box(f());
                    self.clock.advance_iter();
                    self.iters_done += 1;
                }
            }
            BencherMode::Measure { iters } => {
                let start = self.clock.now_ns();
                for _ in 0..iters {
                    std::hint::black_box(f());
                    self.clock.advance_iter();
                }
                self.elapsed_ns = self.clock.now_ns() - start;
                self.iters_done = iters;
            }
        }
    }
}

fn run_one(config: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if !config.label_selected(label) {
        return;
    }
    // Warm-up doubles as calibration: how many iterations fit the window?
    let mut warm = Bencher {
        mode: BencherMode::WarmUp {
            deadline_ns: config.clock.now_ns() + config.warm_up_time.as_nanos() as u64,
        },
        clock: config.clock.clone(),
        iters_done: 0,
        elapsed_ns: 0,
    };
    f(&mut warm);
    if warm.iters_done == 0 {
        // The closure never called iter(); nothing to measure.
        println!("bench {label:<48} (no measurement)");
        return;
    }
    let per_sample = (warm.iters_done * config.measurement_time.as_nanos().max(1) as u64
        / config.warm_up_time.as_nanos().max(1) as u64)
        .div_ceil(config.sample_size as u64)
        .max(1);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    let deadline_ns =
        config.clock.now_ns() + config.measurement_time.mul_f64(1.5).as_nanos() as u64;
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            mode: BencherMode::Measure { iters: per_sample },
            clock: config.clock.clone(),
            iters_done: 0,
            elapsed_ns: 0,
        };
        f(&mut b);
        samples_ns.push(b.elapsed_ns as f64 / per_sample as f64);
        if config.clock.now_ns() > deadline_ns {
            break;
        }
    }
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples_ns.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "bench {label:<48} mean {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        samples_ns.len(),
        per_sample
    );
    let record = SampleRecord {
        label: label.to_string(),
        warm_up_iters: warm.iters_done,
        iters_per_sample: per_sample,
        samples_ns,
    };
    if let Some(hook) = &config.reporter {
        (hook.borrow_mut())(&record);
    }
    jsonl_report(&record);
}

/// Appends `record` to the `CN_BENCH_JSONL` sink, if configured.
fn jsonl_report(record: &SampleRecord) {
    let Ok(path) = std::env::var("CN_BENCH_JSONL") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = record.to_json_line(&bench_bin_name());
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut file) => {
            let _ = writeln!(file, "{line}");
        }
        Err(err) => eprintln!("criterion shim: cannot append to CN_BENCH_JSONL={path}: {err}"),
    }
}

/// The bench binary's taxonomy name: `CN_BENCH_BIN` when set, otherwise
/// the executable stem with cargo's trailing `-<16 hex>` hash stripped.
fn bench_bin_name() -> String {
    if let Ok(name) = std::env::var("CN_BENCH_BIN") {
        if !name.is_empty() {
            return name;
        }
    }
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "unknown".to_string());
    match exe.rsplit_once('-') {
        Some((stem, hash)) if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            stem.to_string()
        }
        _ => exe,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Mirrors criterion's `black_box` re-export.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_cli_filters();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_inputs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(4));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(32), &32usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }

    /// Captures every reported record through the hook.
    fn capturing(c: Criterion) -> (Criterion, Rc<RefCell<Vec<SampleRecord>>>) {
        let seen: Rc<RefCell<Vec<SampleRecord>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = seen.clone();
        let c = c.reporter(move |r| sink.borrow_mut().push(r.clone()));
        (c, seen)
    }

    /// Pins the measurement policy end to end on the virtual clock: a
    /// 1 ms/iter closure under a 10 ms warm-up window runs exactly 10
    /// calibration iterations; a 20 ms measurement window split into 5
    /// samples batches ⌈10·(20/10)/5⌉ = 4 iterations per sample; every
    /// sample then reads exactly 1e6 ns/iter. A shim refactor that
    /// changes warm-up, batching or sample-count semantics breaks this.
    #[test]
    fn fake_clock_pins_warm_up_and_sampling_semantics() {
        let c = Criterion::with_fake_clock(Duration::from_millis(1))
            .sample_size(5)
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(20));
        let (mut c, seen) = capturing(c);
        let mut calls = 0u64;
        c.bench_function("fake", |b| b.iter(|| calls += 1));
        let records = seen.borrow();
        assert_eq!(
            *records,
            vec![SampleRecord {
                label: "fake".to_string(),
                warm_up_iters: 10,
                iters_per_sample: 4,
                samples_ns: vec![1e6; 5],
            }]
        );
        // Warm-up (10) plus 5 samples × 4 iters.
        assert_eq!(calls, 30);
    }

    /// The 1.5× measurement-time deadline truncates slow benchmarks:
    /// with 1 iteration per sample at 1 ms each, sampling stops once the
    /// virtual clock passes warm-up + 30 ms — at 31 samples, far short
    /// of the requested 100.
    #[test]
    fn fake_clock_pins_deadline_truncation() {
        let c = Criterion::with_fake_clock(Duration::from_millis(1))
            .sample_size(100)
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(20));
        let (mut c, seen) = capturing(c);
        c.bench_function("slow", |b| b.iter(|| ()));
        let records = seen.borrow();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].iters_per_sample, 1);
        assert_eq!(records[0].samples_ns.len(), 31);
        assert!(records[0].samples_ns.iter().all(|&s| s == 1e6));
    }

    #[test]
    fn filters_select_benchmarks_by_substring() {
        let c = Criterion::with_fake_clock(Duration::from_millis(1))
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(4))
            .filter("square256");
        let (mut c, seen) = capturing(c);
        let mut group = c.benchmark_group("gemm_packed");
        group.bench_function("square256", |b| b.iter(|| ()));
        group.bench_function("square512", |b| b.iter(|| ()));
        group.finish();
        let labels: Vec<String> = seen.borrow().iter().map(|r| r.label.clone()).collect();
        assert_eq!(labels, vec!["gemm_packed/square256".to_string()]);
    }

    #[test]
    fn closure_without_iter_reports_nothing() {
        let c = Criterion::with_fake_clock(Duration::from_millis(1));
        let (mut c, seen) = capturing(c);
        c.bench_function("empty", |_b| {});
        assert!(seen.borrow().is_empty());
    }

    #[test]
    fn json_line_is_pinned() {
        let record = SampleRecord {
            label: "gemm_packed/square256".to_string(),
            warm_up_iters: 10,
            iters_per_sample: 4,
            samples_ns: vec![1000000.0, 1250000.5],
        };
        assert_eq!(
            record.to_json_line("gemm"),
            "{\"bin\":\"gemm\",\"label\":\"gemm_packed/square256\",\
             \"warm_up_iters\":10,\"iters_per_sample\":4,\
             \"samples_ns\":[1000000,1250000.5]}"
        );
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn mean_over_samples() {
        let record = SampleRecord {
            label: "x".to_string(),
            warm_up_iters: 1,
            iters_per_sample: 1,
            samples_ns: vec![1.0, 3.0],
        };
        assert_eq!(record.mean_ns(), 2.0);
    }
}
