//! Offline shim for `parking_lot`: a [`Mutex`] with the non-poisoning
//! `lock()` signature, backed by `std::sync::Mutex`.

use std::sync::MutexGuard;

/// A mutex whose `lock` never returns a poison error; a poisoned inner
/// lock is recovered, matching parking_lot's semantics.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![0u32; 4]);
        m.lock()[2] = 9;
        assert_eq!(m.into_inner(), vec![0, 0, 9, 0]);
    }
}
