//! Offline shim for `serde`.
//!
//! [`Serialize`] and [`Deserialize`] are marker traits blanket-implemented
//! for every type, and the re-exported derive macros expand to nothing.
//! This keeps `#[derive(Serialize, Deserialize)]` and `T: Serialize`
//! bounds source-compatible with the real crate without pulling in a
//! serialization framework the workspace does not use.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
