//! Offline shim for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *exact* API subset it consumes: [`rngs::StdRng`], [`SeedableRng`]
//! and the [`RngExt`] sampling extension trait. The generator is
//! xoshiro256** seeded through splitmix64 — high-quality, deterministic
//! and dependency-free.

use std::ops::Range;

pub mod rngs {
    /// A deterministic xoshiro256** generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> StdRng {
            // splitmix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            StdRng::next_u64(self)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_u64_seed(seed)
        }
    }
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value uniformly sampleable from an entropy source.
pub trait Sample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range a value can be uniformly drawn from.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let len = self.end.checked_sub(self.start).expect("empty range") as u64;
        assert!(len > 0, "cannot sample from an empty range");
        // Lemire's multiply-shift maps next_u64 onto [0, len) with
        // negligible bias for the small ranges used here.
        let hi = ((rng.next_u64() as u128 * len as u128) >> 64) as u64;
        self.start + hi as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let len = self.end.checked_sub(self.start).expect("empty range");
        assert!(len > 0, "cannot sample from an empty range");
        let hi = ((rng.next_u64() as u128 * len as u128) >> 64) as u64;
        self.start + hi
    }
}

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = r.random_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}
