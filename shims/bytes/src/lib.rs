//! Offline shim for the `bytes` crate.
//!
//! [`Bytes`] is an immutable byte buffer consumed from the front (the
//! [`Buf`] reads advance an internal cursor); [`BytesMut`] is an
//! append-only builder frozen into a [`Bytes`]. Only the little-endian
//! accessors the tensor serializer uses are provided.

use std::borrow::Cow;
use std::ops::{Deref, Range};

/// Read side: consuming accessors over a byte stream.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

/// Write side: appending accessors onto a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a front-consumption cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Cow<'static, [u8]>,
    pos: usize,
}

impl Bytes {
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: Cow::Borrowed(data),
            pos: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer viewing `range` of the unconsumed bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        Bytes {
            data: Cow::Owned(self.as_slice()[range].to_vec()),
            pos: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes {
            data: Cow::Owned(data),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice past end of buffer"
        );
        dst.copy_from_slice(&self.as_slice()[..dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = BytesMut::new();
        w.put_u32_le(7);
        w.put_u64_le(1 << 40);
        w.put_f32_le(-2.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_views_unconsumed_tail() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mut head = [0u8; 2];
        b.copy_to_slice(&mut head);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[4, 5]);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u32_le();
    }
}
