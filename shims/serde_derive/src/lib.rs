//! Offline shim for `serde_derive`.
//!
//! The workspace never serializes through serde (persistence uses the
//! compact binary format in `cn-tensor::io` and CSV in
//! `correctnet::export`); the derives exist so type definitions can keep
//! their `#[derive(Serialize, Deserialize)]` attributes source-compatible
//! with the real crate. The shim traits in `serde` are blanket-implemented,
//! so the derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
