//! Offline mini-`proptest`.
//!
//! A dependency-free reimplementation of the proptest surface this
//! workspace uses: the [`proptest!`] macro over `arg in strategy`
//! bindings, numeric range strategies, `collection::vec`, a small
//! character-class string strategy, `prop_assert*` / `prop_assume!`, and
//! [`ProptestConfig::with_cases`] with `PROPTEST_CASES` as a ceiling.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its generated inputs so it
//!   can be reproduced by hand.
//! - **Deterministic seeding.** The RNG seed derives from the test name
//!   (xor `PROPTEST_RNG_SEED` when set), so runs are reproducible.

use std::fmt;
use std::ops::Range;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Effective case count: the configured count, capped by the
/// `PROPTEST_CASES` environment variable when it is set and smaller.
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        Some(env_cases) => config.cases.min(env_cases.max(1)),
        None => config.cases,
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// `prop_assert*` failed; the test fails.
    Fail(String),
}

/// Deterministic splitmix64 generator for input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name so every test gets a distinct, stable
    /// stream. `PROPTEST_RNG_SEED` perturbs all streams at once.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let env_seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng {
            state: h ^ env_seed,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of test-case inputs. No shrinking: `sample` is the whole
/// contract.
pub trait Strategy {
    type Value: fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $ty
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// String strategy from a regex-like pattern.
///
/// Supports the single form the workspace uses — `[class]{lo,hi}` with
/// literal characters and `a-z` ranges inside the class. Any other
/// pattern is generated as the literal string itself.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((alphabet, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[chars]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let reps = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .to_string();
    let (lo, hi) = match reps.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = reps.parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (a dash at either end is a literal dash).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (start, end) = (class[i] as u32, class[i + 2] as u32);
            if start <= end {
                alphabet.extend((start..=end).filter_map(char::from_u32));
                i += 3;
                continue;
            }
        }
        alphabet.push(class[i]);
        i += 1;
    }
    if alphabet.is_empty() {
        None
    } else {
        Some((alphabet, lo, hi))
    }
}

/// Size specification for [`collection::vec`]: an exact length or a
/// half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The proptest entry macro: wraps `fn name(arg in strategy, ...)` items
/// into `#[test]` functions running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::effective_cases(&config);
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > cases * 16 + 256 {
                            panic!(
                                "proptest {}: too many rejected cases ({} rejects for {} passes)",
                                stringify!($name), rejected, passed
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        let mut inputs = ::std::string::String::new();
                        $(
                            inputs.push_str("\n  ");
                            inputs.push_str(stringify!($arg));
                            inputs.push_str(" = ");
                            inputs.push_str(&format!("{:?}", $arg));
                        )+
                        panic!(
                            "proptest {} failed after {} passing case(s): {}\ninputs:{}",
                            stringify!($name), passed, msg, inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{effective_cases, parse_class_repeat, TestRng};

    #[test]
    fn class_repeat_parses() {
        let (alphabet, lo, hi) = parse_class_repeat("[a-c9 %]{0,12}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', '9', ' ', '%']);
        assert_eq!((lo, hi), (0, 12));
    }

    #[test]
    fn env_caps_cases() {
        // No env var set by default in this test binary: config wins.
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(effective_cases(&ProptestConfig::with_cases(48)), 48);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 3usize..17, x in -2.0f32..2.0, s in 0u64..1000) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(s < 1000);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(1usize..6, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| (1..6).contains(&x)));
        }

        #[test]
        fn string_strategy_respects_class(s in crate::collection::vec("[a-z]{0,5}", 4)) {
            prop_assert_eq!(s.len(), 4);
            for w in &s {
                prop_assert!(w.len() <= 5);
                prop_assert!(w.chars().all(|c| c.is_ascii_lowercase()));
            }
        }

        #[test]
        fn assume_redraws(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
