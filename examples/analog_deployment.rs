//! Device-level deployment: map a trained network onto simulated RRAM
//! crossbars (differential conductance pairs, programming variation, read
//! noise, quantization) and compare against the paper's weight-level
//! log-normal model.
//!
//! ```bash
//! cargo run --release --example analog_deployment
//! ```

use cn_analog::cell::CellSpec;
use cn_analog::deployment::DeploymentMode;
use cn_analog::engine::monte_carlo;
use cn_analog::montecarlo::McConfig;
use cn_analog::{Crossbar, TiledCrossbar};
use cn_data::synthetic_mnist;
use cn_nn::optim::Adam;
use cn_nn::trainer::{TrainConfig, Trainer};
use cn_nn::zoo::{lenet5, LeNetConfig};
use cn_tensor::SeededRng;

fn main() {
    println!("== RRAM crossbar deployment ==\n");

    // A single crossbar doing an analog MAC (paper Fig. 1).
    let mut rng = SeededRng::new(1);
    let w = rng.normal_tensor(&[4, 6], 0.0, 1.0);
    let x = rng.normal_tensor(&[6], 0.0, 1.0);
    let xbar = Crossbar::program(&w, CellSpec::ideal(1.0, 100.0), &mut rng);
    let y_analog = xbar.mac(&x, &mut rng);
    let y_exact = w.matvec(&x);
    println!(
        "ideal crossbar MAC error: {:.2e}",
        (&y_analog - &y_exact).abs_max()
    );

    // Tiling a large matrix over 128×128 arrays.
    let big = rng.normal_tensor(&[300, 200], 0.0, 1.0);
    let tiled = TiledCrossbar::program(&big, 128, CellSpec::typical(0.1), &mut rng);
    println!(
        "300×200 matrix → {} physical 128×128 arrays",
        tiled.tile_count()
    );

    // Whole-network deployment: weight-level vs conductance-level noise.
    let data = synthetic_mnist(600, 200, 11);
    let mut model = lenet5(&LeNetConfig::mnist(2));
    Trainer::new(TrainConfig::new(6, 32, 3)).fit(&mut model, &data.train, &mut Adam::new(2e-3));

    let mc = McConfig::new(8, 0.3, 5);
    let weight_level = monte_carlo(
        &model,
        &data.test,
        &mc,
        &DeploymentMode::WeightLognormal { sigma: 0.3 },
    );
    let device_level = monte_carlo(
        &model,
        &data.test,
        &mc,
        &DeploymentMode::Conductance {
            spec: CellSpec {
                prog_sigma: 0.3,
                read_sigma: 0.0,
                levels: None,
                ..CellSpec::ideal(1.0, 100.0)
            },
            tile_size: 128,
        },
    );
    let quantized = monte_carlo(
        &model,
        &data.test,
        &mc,
        &DeploymentMode::Conductance {
            spec: CellSpec {
                prog_sigma: 0.3,
                read_sigma: 0.0,
                levels: Some(32),
                ..CellSpec::ideal(1.0, 100.0)
            },
            tile_size: 128,
        },
    );
    println!("\naccuracy under σ = 0.3 (8 MC samples):");
    println!(
        "  weight-level log-normal (paper eq. 1–2): {:.1}% ± {:.1}",
        100.0 * weight_level.mean,
        100.0 * weight_level.std
    );
    println!(
        "  conductance-level crossbars:             {:.1}% ± {:.1}",
        100.0 * device_level.mean,
        100.0 * device_level.std
    );
    println!(
        "  + 32-level conductance quantization:     {:.1}% ± {:.1}",
        100.0 * quantized.mean,
        100.0 * quantized.std
    );
}
