//! Compile/execute engine walkthrough: program a trained network onto a
//! deployment backend once, then serve batched inference from sessions —
//! no per-call weight re-deployment, shareable across threads.
//!
//! ```bash
//! cargo run --release --example engine
//! ```

use correctnet_repro::prelude::*;
use std::sync::Arc;

fn main() {
    // Train a small LeNet on synthetic MNIST.
    let data = synthetic_mnist(600, 200, 1);
    let mut model = lenet5(&LeNetConfig::mnist(2));
    Trainer::new(TrainConfig::new(6, 32, 3)).fit(&mut model, &data.train, &mut Adam::new(2e-3));

    // COMPILE: freeze one deployment per backend. The digital backend is
    // the exact reference; the analog backend samples the paper's
    // log-normal weight variations and bakes them into the snapshot.
    let digital = EngineBuilder::new(&model)
        .backend(DigitalBackend)
        .compile()
        .shared();
    let analog = EngineBuilder::new(&model)
        .backend(AnalogBackend::lognormal(0.5))
        .seed(42)
        .compile()
        .shared();

    // EXECUTE: sessions share the snapshots and own their scratch.
    let mut d_session = Session::new(Arc::clone(&digital));
    let mut a_session = Session::new(Arc::clone(&analog));
    println!(
        "clean accuracy   : {:.3}",
        d_session.evaluate(&data.test, 64)
    );
    println!(
        "one σ=0.5 chip   : {:.3}",
        a_session.evaluate(&data.test, 64)
    );

    // One compiled model, many concurrent sessions (e.g. serving threads).
    let preds = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let compiled = Arc::clone(&digital);
                let shard = data.test.images.batch_slice(i * 50, (i + 1) * 50);
                scope.spawn(move || Session::new(compiled).infer_batch(&shard).to_vec())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker"))
            .collect::<Vec<_>>()
    });
    println!("sharded predictions over 4 threads: {} labels", preds.len());

    // Monte-Carlo = N compiled instances executed through sessions.
    let mc = monte_carlo(
        &model,
        &data.test,
        &McConfig::new(15, 0.5, 7),
        &AnalogBackend::lognormal(0.5),
    );
    println!("σ=0.5 over 15 chips: {:.3} ± {:.3}", mc.mean, mc.std);
}
