//! Error suppression in isolation: how Lipschitz-constant regularization
//! (paper eq. 10–11) changes per-layer spectral norms and robustness.
//!
//! ```bash
//! cargo run --release --example lipschitz_training
//! ```

use cn_analog::engine::{monte_carlo, AnalogBackend};
use cn_analog::montecarlo::McConfig;
use cn_data::synthetic_mnist;
use cn_nn::metrics::evaluate;
use cn_nn::zoo::{lenet5, LeNetConfig};
use correctnet::lipschitz::{lambda_for, spectral_norms};
use correctnet::pipeline::{CorrectNetConfig, CorrectNetStages};

fn main() {
    let sigma = 0.5;
    let lambda = lambda_for(1.0, sigma);
    println!("== Lipschitz-constant regularization (σ = {sigma}) ==");
    println!("eq. 10 target: λ = {lambda:.4} at k = 1\n");

    let data = synthetic_mnist(800, 250, 21);
    let cfg = CorrectNetConfig {
        beta: 2e-3,
        ..CorrectNetConfig::quick(sigma, 22)
    };
    let stages = CorrectNetStages::new(cfg);

    let mut plain = lenet5(&LeNetConfig::mnist(23));
    stages.train_plain(&mut plain, &data.train);
    let mut regularized = lenet5(&LeNetConfig::mnist(23));
    stages.train_base(&mut regularized, &data.train);

    println!("per-layer spectral norms (power iteration):");
    println!("  layer | plain  | regularized");
    let sp = spectral_norms(&plain);
    let sr = spectral_norms(&regularized);
    for ((idx, a), (_, b)) in sp.iter().zip(sr.iter()) {
        println!("  {idx:>5} | {a:>6.3} | {b:>6.3}");
    }
    let bound_plain: f32 = sp.iter().map(|(_, s)| s).product();
    let bound_reg: f32 = sr.iter().map(|(_, s)| s).product();
    println!("  Lipschitz product bound: {bound_plain:.3e} → {bound_reg:.3e}\n");

    let acc_plain = evaluate(&mut plain.clone(), &data.test, 64);
    let acc_reg = evaluate(&mut regularized.clone(), &data.test, 64);
    println!(
        "clean accuracy: plain {:.1}%, regularized {:.1}%",
        100.0 * acc_plain,
        100.0 * acc_reg
    );

    for s in [0.2f32, 0.4, 0.5] {
        let mc = McConfig::new(8, s, 24);
        let backend = AnalogBackend::lognormal(mc.sigma);
        let rp = monte_carlo(&plain, &data.test, &mc, &backend);
        let rr = monte_carlo(&regularized, &data.test, &mc, &backend);
        println!(
            "σ={s}: plain {:>5.1}% ± {:>4.1} | regularized {:>5.1}% ± {:>4.1}",
            100.0 * rp.mean,
            100.0 * rp.std,
            100.0 * rr.mean,
            100.0 * rr.std
        );
    }
    println!("\n(Lipschitz training suppresses error amplification; compensation\n recovers the rest — see the quickstart and compensation_search examples.)");
}
