//! Serving walkthrough: a fleet of independent analog deployments behind
//! a dynamic-batching front — bounded admission, micro-batch coalescing,
//! majority-vote redundancy and drift-aware re-programming.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use correctnet_repro::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const REQUESTS: usize = 512;
const CLIENTS: usize = 8;

/// Drives `REQUESTS` classifications through the fleet from `CLIENTS`
/// concurrent client threads, treating `QueueFull` as backpressure.
fn drive(fleet: &Fleet, samples: &[(Tensor, usize)]) -> f32 {
    let next = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= REQUESTS {
                    break;
                }
                let (sample, label) = &samples[i % samples.len()];
                let reply = loop {
                    match fleet.classify(sample) {
                        Ok(reply) => break reply,
                        Err(ServeError::QueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("serving failed: {e}"),
                    }
                };
                if reply.class == *label {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    hits.load(Ordering::Relaxed) as f32 / REQUESTS as f32
}

fn main() {
    // Train a small LeNet on synthetic MNIST.
    let data = synthetic_mnist(600, 200, 1);
    let mut model = lenet5(&LeNetConfig::mnist(2));
    Trainer::new(TrainConfig::new(6, 32, 3)).fit(&mut model, &data.train, &mut Adam::new(2e-3));

    let sample_dims = data.test.sample_dims().to_vec();
    let samples: Vec<(Tensor, usize)> = (0..data.test.len())
        .map(|i| {
            let sample = data.test.images.batch_slice(i, i + 1).reshape(&sample_dims);
            (sample, data.test.labels[i])
        })
        .collect();

    // Three independent σ=0.3 chips behind a majority-vote front, each
    // serving micro-batches of up to 32 requests coalesced for ≤ 2 ms.
    let config = ServeConfig::new(32)
        .max_wait(Duration::from_millis(2))
        .workers(2);
    let fleet = Fleet::new(
        &model,
        AnalogBackend::lognormal(0.3),
        3,
        42,
        RoutePolicy::Majority,
        &sample_dims,
        &config,
    );

    let accuracy = drive(&fleet, &samples);
    println!("majority-vote accuracy      : {accuracy:.3}");
    println!(
        "vote disagreement rate      : {:.3}",
        fleet.vote_disagreement_rate()
    );
    for (i, stats) in fleet.stats().iter().enumerate() {
        println!(
            "instance {i}: {} requests in {} batches, fill {:.2}, p50 {:.2} ms, p99 {:.2} ms",
            stats.requests,
            stats.batches,
            stats.batch_fill,
            stats.p50_us / 1000.0,
            stats.p99_us / 1000.0,
        );
    }

    // Field aging: recompile every instance under conductance drift, then
    // re-program the crossbars to recover.
    let drift = ConductanceDrift::new(0.05, 0.02, 1.0);
    fleet.recompile_drifted(&drift, 1.0e4);
    let drifted = drive(&fleet, &samples);
    fleet.reprogram();
    let reprogrammed = drive(&fleet, &samples);
    println!("accuracy after drift (t=1e4): {drifted:.3}");
    println!("accuracy after re-program   : {reprogrammed:.3}");
    fleet.shutdown();
}
