//! Baseline comparison in miniature (paper Fig. 8): CorrectNet against
//! SRAM weight replication, random sparse adaptation and noise-aware
//! training on LeNet-5/MNIST.
//!
//! ```bash
//! cargo run --release --example baseline_comparison
//! ```

use cn_baselines::protection::RetrainConfig;
use cn_baselines::statistical::{train_noise_aware, NoiseAwareConfig};
use cn_baselines::{magnitude_replication, random_sparse_adaptation};
use cn_data::synthetic_mnist;
use cn_nn::zoo::{lenet5, LeNetConfig};
use correctnet::compensation::{weight_overhead, CompensationPlan};
use correctnet::pipeline::{CorrectNetConfig, CorrectNetStages};

fn main() {
    let sigma = 0.5;
    println!("== Baselines vs CorrectNet (LeNet-5 / synth-MNIST, σ = {sigma}) ==\n");
    let data = synthetic_mnist(800, 250, 61);
    let cfg = CorrectNetConfig::quick(sigma, 62);
    let stages = CorrectNetStages::new(cfg);

    // Common plain model for the baselines.
    let mut plain = lenet5(&LeNetConfig::mnist(63));
    stages.train_plain(&mut plain, &data.train);
    let uncorrected = stages.evaluate(&plain, &data.test);
    println!(
        "uncorrected:                   {:>5.1}%  (overhead 0.0%)",
        100.0 * uncorrected.mean
    );

    // Noise-aware fine-tuning (≈ [11]): zero overhead.
    let mut aware = plain.clone();
    train_noise_aware(
        &mut aware,
        &data.train,
        &NoiseAwareConfig {
            lr: 1e-3,
            ..NoiseAwareConfig::new(sigma, 4, 64)
        },
    );
    let stat = stages.evaluate(&aware, &data.test);
    println!(
        "[11] noise-aware fine-tuning:  {:>5.1}%  (overhead 0.0%)",
        100.0 * stat.mean
    );

    // Magnitude replication (≈ [8]) at 5% digital weights.
    let rep = magnitude_replication(&plain, &data.test, &data.train, &[0.05], sigma, 8, 65, None);
    println!(
        "[8]  top-5% SRAM replication:  {:>5.1}%  (overhead 5.0%)",
        100.0 * rep[0].result.mean
    );
    let rep_rt = magnitude_replication(
        &plain,
        &data.test,
        &data.train,
        &[0.05],
        sigma,
        4,
        65,
        Some(RetrainConfig::quick()),
    );
    println!(
        "[8]  + per-chip retraining:    {:>5.1}%  (overhead 5.0%)",
        100.0 * rep_rt[0].result.mean
    );

    // Random sparse adaptation (≈ [9]) at 5%.
    let rsa = random_sparse_adaptation(
        &plain,
        &data.test,
        &data.train,
        &[0.05],
        sigma,
        4,
        66,
        Some(RetrainConfig::quick()),
    );
    println!(
        "[9]  random sparse adaptation: {:>5.1}%  (overhead 5.0%)",
        100.0 * rsa[0].result.mean
    );

    // CorrectNet: Lipschitz base + conv-layer compensation.
    let mut base = lenet5(&LeNetConfig::mnist(63));
    stages.train_base(&mut base, &data.train);
    let plan = CompensationPlan::uniform(&[0, 1], 1.0);
    let corrected = stages.build_and_train(&base, &data.train, &plan);
    let cn = stages.evaluate(&corrected, &data.test);
    println!(
        "CorrectNet:                    {:>5.1}%  (overhead {:.1}%, no per-chip retraining)",
        100.0 * cn.mean,
        100.0 * weight_overhead(&corrected)
    );
}
