//! Quickstart: train LeNet-5, deploy it on a simulated analog accelerator,
//! watch accuracy collapse under variations, and recover it with
//! CorrectNet (Lipschitz regularization + error compensation).
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cn_analog::engine::{monte_carlo, AnalogBackend};
use cn_analog::montecarlo::McConfig;
use cn_data::synthetic_mnist;
use cn_nn::metrics::evaluate;
use cn_nn::zoo::{lenet5, LeNetConfig};
use correctnet::compensation::{weight_overhead, CompensationPlan};
use correctnet::pipeline::{CorrectNetConfig, CorrectNetStages};

fn main() {
    let sigma = 0.5;
    println!("== CorrectNet quickstart (σ = {sigma}) ==\n");

    // 1. Data: a synthetic MNIST stand-in (seeded, offline).
    let data = synthetic_mnist(1000, 300, 42);
    println!(
        "dataset: {} train / {} test samples of {:?}",
        data.train.len(),
        data.test.len(),
        data.train.sample_dims()
    );

    // 2. Train the base model *with error suppression* (Lipschitz
    //    regularization, paper eq. 10–11).
    let cfg = CorrectNetConfig::quick(sigma, 7);
    let stages = CorrectNetStages::new(cfg);
    let mut model = lenet5(&LeNetConfig::mnist(1));
    stages.train_base(&mut model, &data.train);
    let clean = evaluate(&mut model.clone(), &data.test, 64);
    println!(
        "clean accuracy after Lipschitz training: {:.1}%",
        100.0 * clean
    );

    // 3. Deploy without compensation: Monte-Carlo accuracy under
    //    log-normal weight variations (paper eq. 1–2).
    let mc = McConfig::new(10, sigma, 3);
    let noisy = monte_carlo(&model, &data.test, &mc, &AnalogBackend::lognormal(mc.sigma));
    println!(
        "accuracy under σ={sigma} variations (no compensation): {:.1}% ± {:.1}",
        100.0 * noisy.mean,
        100.0 * noisy.std
    );

    // 4. Candidate selection (95% rule) + error compensation on the
    //    sensitive early layers.
    let report = stages.candidates(&model, &data.test);
    println!(
        "compensation candidates: first {} of {} weight layers",
        report.candidate_count,
        report.sweep.len() - 1
    );
    let plan = CompensationPlan::uniform(&report.candidates(), 0.5);
    let comp = stages.build_and_train(&model, &data.train, &plan);
    let corrected = stages.evaluate(&comp, &data.test);
    println!(
        "CorrectNet accuracy under σ={sigma}: {:.1}% ± {:.1} (overhead {:.2}%)",
        100.0 * corrected.mean,
        100.0 * corrected.std,
        100.0 * weight_overhead(&comp)
    );
    println!(
        "\nrecovered {:.0}% of the clean accuracy",
        100.0 * corrected.mean / clean
    );
}
