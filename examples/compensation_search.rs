//! RL placement search (paper Fig. 6 / Fig. 10): an RNN policy trained
//! with REINFORCE decides which layers get error compensation and how many
//! generator filters to use, against the reward of eq. (12).
//!
//! ```bash
//! cargo run --release --example compensation_search
//! ```

use cn_data::synthetic_mnist;
use cn_nn::zoo::{lenet5, LeNetConfig};
use cn_rl::env::CorrectNetEnv;
use cn_rl::exhaustive::{all_layers, best_of, subsets_at_ratio};
use cn_rl::search::{reinforce_search, SearchConfig};
use correctnet::pipeline::{CorrectNetConfig, CorrectNetStages};

fn main() {
    let sigma = 0.5;
    println!("== RL search for compensation placement (σ = {sigma}) ==\n");

    let data = synthetic_mnist(500, 150, 51);
    let cfg = CorrectNetConfig {
        base_epochs: 5,
        comp_epochs: 2,
        mc_samples: 6,
        ..CorrectNetConfig::quick(sigma, 52)
    };
    let stages = CorrectNetStages::new(cfg);
    let mut base = lenet5(&LeNetConfig::mnist(53));
    stages.train_base(&mut base, &data.train);

    let report = stages.candidates(&base, &data.test);
    println!(
        "candidates: first {} weight layers (clean accuracy {:.1}%)",
        report.candidate_count,
        100.0 * report.clean_accuracy
    );
    let candidates = if report.candidate_count == 0 {
        vec![0, 1] // always search something in this demo
    } else {
        report.candidates()
    };

    let search_cfg = SearchConfig {
        episodes: 12,
        rollouts_per_episode: 3,
        ..SearchConfig::new(0.06, 54)
    };

    // RL search.
    let mut env = CorrectNetEnv::new(stages, &base, &data.train, &data.test, candidates.clone());
    let result = reinforce_search(&mut env, &search_cfg);
    println!(
        "\nRL best: ratios {:?} → {:.1}% ± {:.1} at {:.2}% overhead (reward {:.3}, {} env evals)",
        result.best_ratios,
        100.0 * result.best_outcome.acc_mean,
        100.0 * result.best_outcome.acc_std,
        100.0 * result.best_outcome.overhead,
        result.best_reward,
        env.evaluations()
    );

    // Exhaustive reference at a fixed ratio.
    let mut env2 = CorrectNetEnv::new(stages, &base, &data.train, &data.test, candidates.clone());
    let exhaustive = all_layers(&mut env2, 0.5, &search_cfg.reward);
    println!(
        "exhaustive (all candidates @0.5): {:.1}% at {:.2}% overhead",
        100.0 * exhaustive.outcome.acc_mean,
        100.0 * exhaustive.outcome.overhead
    );
    if candidates.len() <= 3 {
        let subsets = subsets_at_ratio(&mut env2, 0.5, &search_cfg.reward);
        let best = best_of(&subsets);
        println!(
            "subset ground truth: {:?} → reward {:.3}",
            best.ratios, best.reward
        );
    }

    println!("\nreward curve: {:?}", result.reward_curve);
}
